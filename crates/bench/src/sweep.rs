//! Real-vs-simulated sweeps: the machinery behind paper Figs. 8–10.
//!
//! For each problem size: run the algorithm for real under a scheduler,
//! calibrate kernel models from that run's trace, simulate the same
//! configuration, and record predicted vs measured time/GFLOP/s and the
//! percentage error — exactly the series the paper plots.

use serde::{Deserialize, Serialize};
use supersim_calibrate::{calibrate, FitOptions};
use supersim_core::{ModelRegistry, SimConfig};
use supersim_runtime::SchedulerKind;
use supersim_workloads::{Algorithm, Scenario};

/// Where the kernel models for a simulated point come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationSource {
    /// Calibrate from the real run at the same size (the paper's trace
    /// comparisons, Figs. 6–7, work this way).
    PerSize,
    /// Calibrate once from the real run at the given size and reuse for
    /// all sizes (the autotuning use case of §VI-B: pay for one real run,
    /// predict many configurations).
    FromSize(usize),
}

/// One point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Worker count.
    pub workers: usize,
    /// Measured wall-clock seconds of the real run.
    pub real_seconds: f64,
    /// Measured GFLOP/s.
    pub real_gflops: f64,
    /// Numerical residual of the real run (sanity).
    pub residual: f64,
    /// Predicted (virtual) seconds of the simulated run.
    pub sim_seconds: f64,
    /// Predicted GFLOP/s.
    pub sim_gflops: f64,
    /// Wall-clock seconds the simulation itself took.
    pub sim_wall_seconds: f64,
    /// Signed percentage error of the prediction:
    /// `(sim - real) / real * 100`.
    pub error_pct: f64,
}

/// A complete sweep series (one dashed+solid line pair of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Algorithm name.
    pub algorithm: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Points in ascending `n`.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Largest absolute percentage error across the series.
    pub fn max_abs_error_pct(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.error_pct.abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute percentage error.
    pub fn mean_abs_error_pct(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.error_pct.abs()).sum::<f64>() / self.points.len() as f64
    }

    /// Render as a CSV table (the plot data of Figs. 8–10).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "n,nb,workers,real_seconds,real_gflops,sim_seconds,sim_gflops,error_pct,sim_wall_seconds,residual\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{},{},{},{:.6},{:.3},{:.6},{:.3},{:+.2},{:.6},{:.3e}\n",
                p.n,
                p.nb,
                p.workers,
                p.real_seconds,
                p.real_gflops,
                p.sim_seconds,
                p.sim_gflops,
                p.error_pct,
                p.sim_wall_seconds,
                p.residual,
            ));
        }
        s
    }
}

/// Run one real-vs-simulated sweep.
pub fn real_vs_sim(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    sizes: &[usize],
    nb: usize,
    seed: u64,
    source: CalibrationSource,
) -> SweepSeries {
    // Pre-calibrate if a single source size is requested.
    let base = |n: usize| {
        Scenario::new(alg)
            .scheduler(kind)
            .workers(workers)
            .n(n)
            .tile_size(nb)
    };
    let fixed_registry: Option<ModelRegistry> = match source {
        CalibrationSource::FromSize(n0) => {
            let real = base(n0).seed(seed).run_real();
            Some(calibrate(&real.trace, FitOptions::default()).registry)
        }
        CalibrationSource::PerSize => None,
    };

    let mut points = Vec::with_capacity(sizes.len());
    for (i, &n) in sizes.iter().enumerate() {
        let real = base(n).seed(seed.wrapping_add(i as u64)).run_real();
        let registry = match &fixed_registry {
            Some(r) => r.clone(),
            None => calibrate(&real.trace, FitOptions::default()).registry,
        };
        let sim = base(n)
            .models(registry)
            .config(SimConfig {
                seed: seed ^ n as u64,
                ..SimConfig::default()
            })
            .run_sim();
        let error_pct = (sim.predicted_seconds - real.seconds) / real.seconds * 100.0;
        points.push(SweepPoint {
            n,
            nb,
            workers,
            real_seconds: real.seconds,
            real_gflops: real.gflops,
            residual: real.residual,
            sim_seconds: sim.predicted_seconds,
            sim_gflops: sim.gflops,
            sim_wall_seconds: sim.wall_seconds,
            error_pct,
        });
    }
    SweepSeries {
        algorithm: alg.name().to_string(),
        scheduler: kind.name().to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_sane_errors() {
        let series = real_vs_sim(
            Algorithm::Cholesky,
            SchedulerKind::Quark,
            2,
            &[48, 64],
            16,
            1,
            CalibrationSource::PerSize,
        );
        assert_eq!(series.points.len(), 2);
        for p in &series.points {
            assert!(p.residual < 1e-10, "residual {}", p.residual);
            assert!(p.real_seconds > 0.0);
            assert!(p.sim_seconds > 0.0);
            assert!(p.error_pct.is_finite());
        }
        let csv = series.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("error_pct"));
    }

    #[test]
    fn fixed_calibration_source_reuses_models() {
        let series = real_vs_sim(
            Algorithm::Cholesky,
            SchedulerKind::Quark,
            2,
            &[48],
            16,
            2,
            CalibrationSource::FromSize(64),
        );
        assert_eq!(series.points.len(), 1);
        assert!(series.max_abs_error_pct().is_finite());
        assert!(series.mean_abs_error_pct() <= series.max_abs_error_pct());
    }
}
