//! Shared contention scenarios for the hot-path benchmarks: many threads
//! draining one Task Execution Queue, and a burst of independent tasks
//! through the runtime engine. Used by both `benches/contention.rs`
//! (criterion) and `src/bin/perf_baseline.rs` (JSON baseline emitter).

use std::sync::Arc;
use std::time::Instant;
use supersim_core::{TaskExecutionQueue, WakeupMode};
use supersim_dag::{Access, DataId};
use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};

/// Deterministic xorshift64 — duration variety without pulling an RNG into
/// the timed region.
fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Drain `waiters * per_waiter` pre-inserted TEQ entries with `waiters`
/// OS threads contending on `wait_front`/`retire`, and return the elapsed
/// seconds for the drain alone (inserts and thread spawns excluded).
///
/// All entries are inserted before the first retirement: a concurrent
/// insert may displace an already-woken front (the paper's §V-E race,
/// deliberately reproducible under `Mitigation::None`), so the raw
/// insert/wait/retire protocol is only race-free when the insert phase
/// completes first. Each thread serves its own tickets in ascending
/// `(end, seq)` order — any other order would self-deadlock, because a
/// later ticket of the same thread can never reach the front while an
/// earlier one is still queued.
pub fn teq_drain_seconds(mode: WakeupMode, waiters: usize, per_waiter: usize) -> f64 {
    let q = Arc::new(TaskExecutionQueue::with_wakeup_mode(mode));
    let total = waiters * per_waiter;
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut per_thread: Vec<Vec<_>> = vec![Vec::with_capacity(per_waiter); waiters];
    for i in 0..total {
        let d = (xorshift64(&mut rng) % 100) as f64 / 100.0;
        let (ticket, _) = q.insert(d);
        per_thread[i % waiters].push(ticket);
    }
    for tickets in &mut per_thread {
        // Stable sort on `end`: ties keep insertion order, which is
        // ascending sequence number — i.e. exact (end, seq) retire order.
        tickets.sort_by(|a, b| a.end.total_cmp(&b.end));
    }

    let barrier = Arc::new(std::sync::Barrier::new(waiters + 1));
    let handles: Vec<_> = per_thread
        .into_iter()
        .map(|tickets| {
            let q = q.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for t in tickets {
                    q.wait_front(t);
                    q.retire(t);
                }
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("drain thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(q.retired(), total as u64, "drain must retire everything");
    elapsed
}

/// TEQ drain throughput in retired tasks per second.
pub fn teq_throughput(mode: WakeupMode, waiters: usize, per_waiter: usize) -> f64 {
    let secs = teq_drain_seconds(mode, waiters, per_waiter);
    (waiters * per_waiter) as f64 / secs.max(1e-12)
}

/// Push `tasks` independent no-op tasks through a `workers`-wide runtime
/// and return elapsed seconds from first submit to full completion. This
/// exercises the engine's submit path, ready-queue handoff, bounded
/// wakeups, and lock-free completion accounting.
pub fn engine_burst_seconds(workers: usize, tasks: usize) -> f64 {
    let rt = Runtime::new(RuntimeConfig::simple(workers));
    let start = Instant::now();
    for i in 0..tasks {
        rt.submit(TaskDesc::new(
            "burst",
            vec![Access::write(DataId(i as u64))],
            |_| {},
        ));
    }
    rt.seal();
    rt.wait_all().expect("burst tasks must not fail");
    start.elapsed().as_secs_f64()
}

/// Engine burst throughput in tasks per second.
pub fn engine_throughput(workers: usize, tasks: usize) -> f64 {
    tasks as f64 / engine_burst_seconds(workers, tasks).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teq_drain_retires_everything_in_both_modes() {
        for mode in [WakeupMode::Broadcast, WakeupMode::Targeted] {
            let secs = teq_drain_seconds(mode, 4, 25);
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn engine_burst_completes() {
        let secs = engine_burst_seconds(2, 200);
        assert!(secs > 0.0);
    }
}
