//! # supersim-bench
//!
//! Criterion benchmarks and the `figures` binary that regenerates every
//! table and figure of the paper's evaluation (see DESIGN.md §4 for the
//! experiment index). Shared sweep helpers live here.

pub mod contention;
pub mod sweep;
