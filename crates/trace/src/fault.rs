//! Fault-marking conventions for trace spans.
//!
//! The fault-injection layer records the timeline of a perturbed task as
//! ordinary [`crate::TraceEvent`]s — same task id, same lanes — and marks
//! the abnormal segments through the kernel label alone. That keeps the
//! trace model (and every serialization of it) unchanged: a fault-free
//! plan produces byte-identical output, and renderers that predate the
//! conventions still draw marked spans as regular tasks.
//!
//! Conventions:
//!
//! * `<kernel>!fail` — a failed (aborted) attempt whose work is discarded;
//! * `<kernel>!lost` — work completed before a permanent failure but lost
//!   to it (rolled back past the last checkpoint, or cut off in flight);
//! * `~backoff` — idle retry backoff between attempts.
//!
//! `!` and `~` cannot appear in kernel labels produced by the workload
//! drivers (BLAS-style identifiers), so the marks are unambiguous.

use crate::TraceEvent;

/// Label suffix marking a failed (aborted, to-be-retried) attempt.
pub const FAIL_SUFFIX: &str = "!fail";

/// Label suffix marking completed work lost to a permanent failure.
pub const LOST_SUFFIX: &str = "!lost";

/// Whole-span label for idle retry backoff.
pub const BACKOFF_LABEL: &str = "~backoff";

/// Classification of a trace span under the fault-marking conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A normally completed task (or any span without a fault mark).
    Normal,
    /// A failed attempt (discarded work, retried later).
    Failed,
    /// Completed work lost to a permanent failure.
    Lost,
    /// Idle retry backoff.
    Backoff,
}

/// Classify a kernel label under the fault-marking conventions.
pub fn span_kind(kernel: &str) -> SpanKind {
    if kernel == BACKOFF_LABEL {
        SpanKind::Backoff
    } else if kernel.ends_with(FAIL_SUFFIX) {
        SpanKind::Failed
    } else if kernel.ends_with(LOST_SUFFIX) {
        SpanKind::Lost
    } else {
        SpanKind::Normal
    }
}

/// The kernel label with any fault mark stripped, e.g. `"dgemm!fail"` →
/// `"dgemm"`. Backoff spans have no underlying kernel and map to `""`.
pub fn base_kernel(kernel: &str) -> &str {
    if kernel == BACKOFF_LABEL {
        ""
    } else if let Some(base) = kernel.strip_suffix(FAIL_SUFFIX) {
        base
    } else if let Some(base) = kernel.strip_suffix(LOST_SUFFIX) {
        base
    } else {
        kernel
    }
}

/// Classify a trace event (see [`span_kind`]).
pub fn event_kind(e: &TraceEvent) -> SpanKind {
    span_kind(&e.kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_label_marks() {
        assert_eq!(span_kind("dgemm"), SpanKind::Normal);
        assert_eq!(span_kind("dgemm!fail"), SpanKind::Failed);
        assert_eq!(span_kind("dpotrf!lost"), SpanKind::Lost);
        assert_eq!(span_kind("~backoff"), SpanKind::Backoff);
    }

    #[test]
    fn base_kernel_strips_marks() {
        assert_eq!(base_kernel("dgemm"), "dgemm");
        assert_eq!(base_kernel("dgemm!fail"), "dgemm");
        assert_eq!(base_kernel("dpotrf!lost"), "dpotrf");
        assert_eq!(base_kernel("~backoff"), "");
    }

    #[test]
    fn plain_labels_never_classify_as_faulted() {
        for l in ["dpotrf", "dtrsm", "dsyrk", "dgemm", "xfer", "dtsmqr"] {
            assert_eq!(span_kind(l), SpanKind::Normal);
            assert_eq!(base_kernel(l), l);
        }
    }
}
