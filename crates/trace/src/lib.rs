//! # supersim-trace
//!
//! Execution-trace infrastructure for the superscalar scheduling simulator.
//!
//! The paper (§V-A) explains that general-purpose tracing frameworks record
//! *wall-clock* time, while the simulation needs traces in *virtual*
//! (user-specified) time — so the authors wrote "a rudimentary trace
//! generation environment" with SVG output and a plain-text format. This
//! crate is that environment:
//!
//! * [`Trace`] / [`TraceEvent`] — the trace model: one lane per worker,
//!   one rectangle per executed task, in arbitrary time units;
//! * [`TraceRecorder`] — a thread-safe recorder that workers log into
//!   (in either real or virtual time);
//! * [`svg`] — Gantt-style SVG rendering (paper Figs. 6–7);
//! * [`chrome`] — Chrome trace-event JSON export (chrome://tracing);
//! * [`text`] — a line-oriented plain-text format with a parser;
//! * [`ascii`] — quick terminal rendering for the examples;
//! * [`stats`] — makespan, utilization, per-kernel summaries;
//! * [`compare`] — the similarity metrics used to judge simulated traces
//!   against real ones (makespan error, per-class counts, placement and
//!   start-time agreement).

pub mod ascii;
pub mod chrome;
pub mod color;
pub mod compare;
pub mod fault;
#[cfg(test)]
mod proptests;
pub mod recorder;
pub mod stats;
pub mod svg;
pub mod text;

pub use compare::TraceComparison;
pub use recorder::TraceRecorder;
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// One executed task occurrence in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Worker (lane) index the task ran on.
    pub worker: usize,
    /// Kernel class label, e.g. `"dgemm"`.
    pub kernel: String,
    /// Stable task identity (submission order), used to match events
    /// between a real and a simulated trace.
    pub task_id: u64,
    /// Start time (seconds — wall-clock or virtual).
    pub start: f64,
    /// End time; must satisfy `end >= start`.
    pub end: f64,
}

impl TraceEvent {
    /// Duration of the event.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of worker lanes (may exceed the max worker index seen, for
    /// workers that executed nothing).
    pub workers: usize,
    /// All events; kept sorted by `(worker, start)` after [`Trace::normalize`].
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace with `workers` lanes.
    pub fn new(workers: usize) -> Self {
        Trace {
            workers,
            events: Vec::new(),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest event end (0 for an empty trace).
    pub fn t_max(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Makespan: latest end minus earliest start (0 for empty).
    pub fn makespan(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let start = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        self.t_max() - start
    }

    /// Sort events by `(worker, start, task_id)` and grow `workers` to cover
    /// every event. Shifts time so the earliest start is 0.
    pub fn normalize(&mut self) {
        if let Some(max_w) = self.events.iter().map(|e| e.worker).max() {
            self.workers = self.workers.max(max_w + 1);
        }
        let t0 = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        if t0.is_finite() && t0 != 0.0 {
            for e in &mut self.events {
                e.start -= t0;
                e.end -= t0;
            }
        }
        self.events.sort_by(|a, b| {
            (a.worker, a.start, a.task_id)
                .partial_cmp(&(b.worker, b.start, b.task_id))
                .expect("non-finite times in trace")
        });
    }

    /// Canonical virtual-time text projection: one line per event, sorted
    /// by task id (then start), **no worker lanes**. Worker placement is
    /// scheduler-race dependent run to run, but task ids, kernels and
    /// virtual times are seed-deterministic — so this projection diffs
    /// bit-for-bit across repeated runs of the same `(seed, plan)`; the
    /// CI determinism gates rely on that. Fault-marked spans keep their
    /// kernel suffixes, so faulted schedules are covered too.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut events: Vec<&TraceEvent> = self.events.iter().collect();
        events.sort_by(|a, b| a.task_id.cmp(&b.task_id).then(a.start.total_cmp(&b.start)));
        let mut s = String::with_capacity(events.len() * 48);
        for e in events {
            let _ = writeln!(s, "{} {} {:?} {:?}", e.task_id, e.kernel, e.start, e.end);
        }
        s
    }

    /// Iterate events of a single lane.
    pub fn lane(&self, worker: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.worker == worker)
    }

    /// Distinct kernel labels in first-appearance order.
    pub fn kernel_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.iter().any(|s| s == &e.kernel) {
                seen.push(e.kernel.clone());
            }
        }
        seen
    }

    /// Validate internal consistency: all events have `end >= start`,
    /// finite times, lane indices within `workers`, and no two events on
    /// the same lane overlap by more than `tol`.
    pub fn validate(&self, tol: f64) -> Result<(), String> {
        for e in &self.events {
            if !(e.start.is_finite() && e.end.is_finite()) {
                return Err(format!("task {} has non-finite times", e.task_id));
            }
            if e.end < e.start {
                return Err(format!("task {} ends before it starts", e.task_id));
            }
            if e.worker >= self.workers {
                return Err(format!(
                    "task {} on worker {} but trace has {} lanes",
                    e.task_id, e.worker, self.workers
                ));
            }
        }
        for w in 0..self.workers {
            let mut lane: Vec<&TraceEvent> = self.lane(w).collect();
            lane.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in lane.windows(2) {
                if pair[1].start < pair[0].end - tol {
                    return Err(format!(
                        "worker {} overlap: task {} [{:.6},{:.6}] vs task {} [{:.6},{:.6}]",
                        w,
                        pair[0].task_id,
                        pair[0].start,
                        pair[0].end,
                        pair[1].task_id,
                        pair[1].start,
                        pair[1].end
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::new(4);
        assert_eq!(t.makespan(), 0.0);
        assert!(t.is_empty());
        assert!(t.validate(0.0).is_ok());
    }

    #[test]
    fn makespan_spans_events() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, "a", 0, 1.0, 2.0));
        t.events.push(ev(1, "b", 1, 0.5, 3.5));
        assert!((t.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_shifts_sorts_and_grows() {
        let mut t = Trace::new(1);
        t.events.push(ev(3, "b", 1, 5.0, 6.0));
        t.events.push(ev(0, "a", 0, 2.0, 3.0));
        t.normalize();
        assert_eq!(t.workers, 4);
        assert_eq!(t.events[0].task_id, 0);
        assert_eq!(t.events[0].start, 0.0);
        assert_eq!(t.events[1].start, 3.0);
    }

    #[test]
    fn validate_catches_overlap() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, "a", 0, 0.0, 2.0));
        t.events.push(ev(0, "b", 1, 1.0, 3.0));
        assert!(t.validate(1e-9).is_err());
        // Different lanes may overlap freely.
        t.events[1].worker = 1;
        t.workers = 2;
        assert!(t.validate(1e-9).is_ok());
    }

    #[test]
    fn validate_catches_bad_times_and_lanes() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, "a", 0, 2.0, 1.0));
        assert!(t.validate(0.0).unwrap_err().contains("ends before"));
        t.events[0] = ev(5, "a", 0, 0.0, 1.0);
        assert!(t.validate(0.0).unwrap_err().contains("lanes"));
        t.events[0] = ev(0, "a", 0, f64::NAN, 1.0);
        assert!(t.validate(0.0).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn kernel_labels_first_seen_order() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, "gemm", 0, 0.0, 1.0));
        t.events.push(ev(0, "trsm", 1, 1.0, 2.0));
        t.events.push(ev(0, "gemm", 2, 2.0, 3.0));
        assert_eq!(t.kernel_labels(), vec!["gemm", "trsm"]);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, "a", 0, 0.0, 1.5));
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn canonical_ignores_worker_placement_but_not_times() {
        let mut a = Trace::new(2);
        a.events.push(ev(0, "gemm", 0, 0.0, 1.0));
        a.events.push(ev(1, "trsm", 1, 0.0, 2.0));
        let mut b = Trace::new(2);
        b.events.push(ev(1, "trsm", 1, 0.0, 2.0));
        b.events.push(ev(0, "gemm", 0, 0.0, 1.0));
        b.events[1].worker = 1;
        b.events[0].worker = 0;
        assert_eq!(a.canonical(), b.canonical());
        b.events[0].end = 2.5;
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn lane_filters_by_worker() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, "a", 0, 0.0, 1.0));
        t.events.push(ev(1, "b", 1, 0.0, 1.0));
        t.events.push(ev(0, "c", 2, 1.0, 2.0));
        assert_eq!(t.lane(0).count(), 2);
        assert_eq!(t.lane(1).count(), 1);
    }
}
