//! # supersim-trace
//!
//! Execution-trace infrastructure for the superscalar scheduling simulator.
//!
//! The paper (§V-A) explains that general-purpose tracing frameworks record
//! *wall-clock* time, while the simulation needs traces in *virtual*
//! (user-specified) time — so the authors wrote "a rudimentary trace
//! generation environment" with SVG output and a plain-text format. This
//! crate is that environment:
//!
//! * [`Trace`] / [`TraceEvent`] — the trace model: one lane per worker,
//!   one rectangle per executed task, in arbitrary time units;
//! * [`TraceRecorder`] — a thread-safe recorder that workers log into
//!   (in either real or virtual time), with an optional bounded-memory
//!   streaming mode that drains to a [`TraceSink`] at epoch boundaries;
//! * [`sink`] — push-based streaming sinks (ndjson, incremental Chrome
//!   JSON, in-memory collection, live-subscriber channels);
//! * [`svg`] — Gantt-style SVG rendering (paper Figs. 6–7);
//! * [`chrome`] — Chrome trace-event JSON export (chrome://tracing);
//! * [`text`] — a line-oriented plain-text format with a parser;
//! * [`ascii`] — quick terminal rendering for the examples;
//! * [`stats`] — makespan, utilization, per-kernel summaries;
//! * [`compare`] — the similarity metrics used to judge simulated traces
//!   against real ones (makespan error, per-class counts, placement and
//!   start-time agreement).
//!
//! # Migration: deprecated bulk access
//!
//! `Trace.events` used to be the only way in or out of a trace; it is now
//! deprecated in favour of an accessor surface that works identically for
//! buffered and streamed traces:
//!
//! * read: [`Trace::spans`] (a slice — iterate, index, window it);
//! * write: [`Trace::push`], [`Trace::spans_mut`];
//! * construct/consume: [`Trace::from_parts`], [`Trace::into_events`].
//!
//! Code holding whole traces should consider not materializing them at
//! all: attach a [`TraceSink`] to the recorder
//! ([`TraceRecorder::attach_sink`]) and consume spans per flush epoch.

pub mod ascii;
pub mod chrome;
pub mod color;
pub mod compare;
pub mod fault;
#[cfg(test)]
mod proptests;
pub mod recorder;
pub mod sink;
pub mod stats;
pub mod svg;
pub mod text;

pub use compare::TraceComparison;
pub use recorder::TraceRecorder;
pub use sink::TraceSink;
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// One executed task occurrence in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Worker (lane) index the task ran on.
    pub worker: usize,
    /// Kernel class label, e.g. `"dgemm"`.
    pub kernel: String,
    /// Stable task identity (submission order), used to match events
    /// between a real and a simulated trace.
    pub task_id: u64,
    /// Start time (seconds — wall-clock or virtual).
    pub start: f64,
    /// End time; must satisfy `end >= start`.
    pub end: f64,
}

impl TraceEvent {
    /// Duration of the event.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Number of worker lanes (may exceed the max worker index seen, for
    /// workers that executed nothing).
    pub workers: usize,
    /// All events; kept sorted by `(worker, start)` after [`Trace::normalize`].
    #[deprecated(
        note = "use spans()/spans_mut()/push()/from_parts()/into_events(), or stream \
                through a TraceSink instead of materializing the whole trace"
    )]
    pub events: Vec<TraceEvent>,
}

#[allow(deprecated)]
impl Trace {
    /// An empty trace with `workers` lanes.
    pub fn new(workers: usize) -> Self {
        Trace {
            workers,
            events: Vec::new(),
        }
    }

    /// Build a trace from a prepared span list (not normalized).
    pub fn from_parts(workers: usize, events: Vec<TraceEvent>) -> Self {
        Trace { workers, events }
    }

    /// All spans, in the trace's current order.
    pub fn spans(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable access to the span list (renderer-internal reordering,
    /// stitching, filtering).
    pub fn spans_mut(&mut self) -> &mut Vec<TraceEvent> {
        &mut self.events
    }

    /// Append one span.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Consume the trace into its span list.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest event end (0 for an empty trace).
    pub fn t_max(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Makespan: latest end minus earliest start (0 for empty).
    pub fn makespan(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let start = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        self.t_max() - start
    }

    /// Sort events by `(worker, start, task_id)` and grow `workers` to cover
    /// every event. Shifts time so the earliest start is 0.
    pub fn normalize(&mut self) {
        if let Some(max_w) = self.events.iter().map(|e| e.worker).max() {
            self.workers = self.workers.max(max_w + 1);
        }
        let t0 = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        if t0.is_finite() && t0 != 0.0 {
            for e in &mut self.events {
                e.start -= t0;
                e.end -= t0;
            }
        }
        self.events.sort_by(|a, b| {
            (a.worker, a.start, a.task_id)
                .partial_cmp(&(b.worker, b.start, b.task_id))
                .expect("non-finite times in trace")
        });
    }

    /// Canonical virtual-time text projection: one line per event, sorted
    /// by task id (then start), **no worker lanes**. Worker placement is
    /// scheduler-race dependent run to run, but task ids, kernels and
    /// virtual times are seed-deterministic — so this projection diffs
    /// bit-for-bit across repeated runs of the same `(seed, plan)`; the
    /// CI determinism gates rely on that. Fault-marked spans keep their
    /// kernel suffixes, so faulted schedules are covered too.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut events: Vec<&TraceEvent> = self.events.iter().collect();
        events.sort_by(|a, b| a.task_id.cmp(&b.task_id).then(a.start.total_cmp(&b.start)));
        let mut s = String::with_capacity(events.len() * 48);
        for e in events {
            let _ = writeln!(s, "{} {} {:?} {:?}", e.task_id, e.kernel, e.start, e.end);
        }
        s
    }

    /// Iterate events of a single lane.
    pub fn lane(&self, worker: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.worker == worker)
    }

    /// Distinct kernel labels in first-appearance order.
    pub fn kernel_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.iter().any(|s| s == &e.kernel) {
                seen.push(e.kernel.clone());
            }
        }
        seen
    }

    /// Validate internal consistency: all events have `end >= start`,
    /// finite times, lane indices within `workers`, and no two events on
    /// the same lane overlap by more than `tol`.
    pub fn validate(&self, tol: f64) -> Result<(), String> {
        for e in &self.events {
            if !(e.start.is_finite() && e.end.is_finite()) {
                return Err(format!("task {} has non-finite times", e.task_id));
            }
            if e.end < e.start {
                return Err(format!("task {} ends before it starts", e.task_id));
            }
            if e.worker >= self.workers {
                return Err(format!(
                    "task {} on worker {} but trace has {} lanes",
                    e.task_id, e.worker, self.workers
                ));
            }
        }
        for w in 0..self.workers {
            let mut lane: Vec<&TraceEvent> = self.lane(w).collect();
            lane.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in lane.windows(2) {
                if pair[1].start < pair[0].end - tol {
                    return Err(format!(
                        "worker {} overlap: task {} [{:.6},{:.6}] vs task {} [{:.6},{:.6}]",
                        w,
                        pair[0].task_id,
                        pair[0].start,
                        pair[0].end,
                        pair[1].task_id,
                        pair[1].start,
                        pair[1].end
                    ));
                }
            }
        }
        Ok(())
    }
}

// Hand-written (de)serialization: the derive would touch the deprecated
// `events` field from generated code, which `-D deprecated` builds
// reject. The emitted shape matches what the derive produced, so
// persisted traces stay compatible.
impl Serialize for Trace {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        #[allow(deprecated)]
        let obj = serde::Value::Object(vec![
            ("workers".to_string(), serde::to_value(&self.workers)?),
            ("events".to_string(), serde::to_value(&self.events)?),
        ]);
        serializer.serialize_value(obj)
    }
}

impl<'de> Deserialize<'de> for Trace {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        let obj = match v {
            serde::Value::Object(m) => m,
            other => {
                return Err(<D::Error as serde::de::Error>::custom(format!(
                    "expected object, got {other:?}"
                )))
            }
        };
        let take = |k: &str| -> serde::Value {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, val)| val.clone())
                .unwrap_or(serde::Value::Null)
        };
        let workers = serde::from_value(take("workers"))
            .map_err(|e| <D::Error as serde::de::Error>::custom(format!("Trace.workers: {e}")))?;
        let events = serde::from_value(take("events"))
            .map_err(|e| <D::Error as serde::de::Error>::custom(format!("Trace.events: {e}")))?;
        Ok(Trace::from_parts(workers, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::new(4);
        assert_eq!(t.makespan(), 0.0);
        assert!(t.is_empty());
        assert!(t.validate(0.0).is_ok());
    }

    #[test]
    fn makespan_spans_events() {
        let mut t = Trace::new(2);
        t.push(ev(0, "a", 0, 1.0, 2.0));
        t.push(ev(1, "b", 1, 0.5, 3.5));
        assert!((t.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_shifts_sorts_and_grows() {
        let mut t = Trace::new(1);
        t.push(ev(3, "b", 1, 5.0, 6.0));
        t.push(ev(0, "a", 0, 2.0, 3.0));
        t.normalize();
        assert_eq!(t.workers, 4);
        assert_eq!(t.spans()[0].task_id, 0);
        assert_eq!(t.spans()[0].start, 0.0);
        assert_eq!(t.spans()[1].start, 3.0);
    }

    #[test]
    fn validate_catches_overlap() {
        let mut t = Trace::new(1);
        t.push(ev(0, "a", 0, 0.0, 2.0));
        t.push(ev(0, "b", 1, 1.0, 3.0));
        assert!(t.validate(1e-9).is_err());
        // Different lanes may overlap freely.
        t.spans_mut()[1].worker = 1;
        t.workers = 2;
        assert!(t.validate(1e-9).is_ok());
    }

    #[test]
    fn validate_catches_bad_times_and_lanes() {
        let mut t = Trace::new(1);
        t.push(ev(0, "a", 0, 2.0, 1.0));
        assert!(t.validate(0.0).unwrap_err().contains("ends before"));
        t.spans_mut()[0] = ev(5, "a", 0, 0.0, 1.0);
        assert!(t.validate(0.0).unwrap_err().contains("lanes"));
        t.spans_mut()[0] = ev(0, "a", 0, f64::NAN, 1.0);
        assert!(t.validate(0.0).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn kernel_labels_first_seen_order() {
        let mut t = Trace::new(1);
        t.push(ev(0, "gemm", 0, 0.0, 1.0));
        t.push(ev(0, "trsm", 1, 1.0, 2.0));
        t.push(ev(0, "gemm", 2, 2.0, 3.0));
        assert_eq!(t.kernel_labels(), vec!["gemm", "trsm"]);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Trace::new(2);
        t.push(ev(0, "a", 0, 0.0, 1.5));
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn accessors_agree_with_legacy_field() {
        // The deprecated field keeps working for external code that has
        // not migrated yet, and views the same storage as the accessors.
        let mut t = Trace::new(1);
        t.push(ev(0, "a", 0, 0.0, 1.0));
        #[allow(deprecated)]
        {
            assert_eq!(t.events.len(), t.spans().len());
            t.events.push(ev(0, "b", 1, 1.0, 2.0));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.clone().into_events().len(), 2);
        assert_eq!(Trace::from_parts(1, t.clone().into_events()), t);
    }

    #[test]
    fn canonical_ignores_worker_placement_but_not_times() {
        let mut a = Trace::new(2);
        a.push(ev(0, "gemm", 0, 0.0, 1.0));
        a.push(ev(1, "trsm", 1, 0.0, 2.0));
        let mut b = Trace::new(2);
        b.push(ev(1, "trsm", 1, 0.0, 2.0));
        b.push(ev(0, "gemm", 0, 0.0, 1.0));
        b.spans_mut()[1].worker = 1;
        b.spans_mut()[0].worker = 0;
        assert_eq!(a.canonical(), b.canonical());
        b.spans_mut()[0].end = 2.5;
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn lane_filters_by_worker() {
        let mut t = Trace::new(2);
        t.push(ev(0, "a", 0, 0.0, 1.0));
        t.push(ev(1, "b", 1, 0.0, 1.0));
        t.push(ev(0, "c", 2, 1.0, 2.0));
        assert_eq!(t.lane(0).count(), 2);
        assert_eq!(t.lane(1).count(), 1);
    }
}
