//! Push-based streaming trace sinks.
//!
//! The buffered pipeline ([`crate::TraceRecorder::finish`]) holds every
//! span in memory until the run ends, so memory grows linearly with task
//! count — a wall for 10⁶–10⁷-task replay scenarios. A [`TraceSink`]
//! inverts the flow: the recorder *pushes* spans out in epoch-sized
//! batches as the virtual clock retires them (see
//! [`crate::TraceRecorder::attach_sink`]), and the run's peak memory is
//! bounded by the spans resident within one flush epoch.
//!
//! # Epoch rule and ordering guarantee
//!
//! Flush epoch `k` (for epoch length `ε`) contains exactly the spans
//! whose `end` falls in `((k-1)·ε, k·ε]`, delivered once the virtual
//! clock has advanced strictly past `k·ε`. Within one epoch the spans
//! are sorted by `(start, seq)` — the same total order the buffered
//! merge uses — so concatenating all epoch batches yields the buffered
//! event order exactly (up to the time-origin shift applied by
//! [`crate::Trace::normalize`], which is the identity for simulation
//! runs that start at virtual time 0).
//!
//! Sinks run on whichever engine thread happens to advance the clock
//! past an epoch boundary, hence `Send`. Slow sinks stall the engine;
//! sinks that must not stall it (live subscribers) should buffer or
//! drop, as [`ChannelSink`] does.

use crate::{Trace, TraceEvent};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

/// A destination for finalized trace spans, fed one flush epoch at a
/// time in deterministic `(start, seq)` order.
pub trait TraceSink: Send {
    /// Deliver one epoch's worth of finalized spans. Never called with
    /// an empty batch.
    fn flush_epoch(&mut self, spans: &[TraceEvent]) -> io::Result<()>;

    /// The stream is complete; flush any buffered output. Called exactly
    /// once, after the final (possibly partial) epoch.
    fn close(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The compatibility sink: collects streamed spans back into an
/// in-memory buffer shared with a [`CollectHandle`], so callers that
/// want a full [`Trace`] can still get one from a streaming run.
#[derive(Debug, Default)]
pub struct CollectSink {
    shared: Arc<Mutex<Vec<TraceEvent>>>,
}

impl CollectSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle onto the shared buffer, valid after the sink itself has
    /// been boxed away into a recorder.
    pub fn handle(&self) -> CollectHandle {
        CollectHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl TraceSink for CollectSink {
    fn flush_epoch(&mut self, spans: &[TraceEvent]) -> io::Result<()> {
        self.shared.lock().extend_from_slice(spans);
        Ok(())
    }
}

/// Reader side of a [`CollectSink`].
#[derive(Debug, Clone)]
pub struct CollectHandle {
    shared: Arc<Mutex<Vec<TraceEvent>>>,
}

impl CollectHandle {
    /// Spans collected so far.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Take the collected spans, leaving the buffer empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.shared.lock())
    }

    /// Drain the collected spans into a normalized [`Trace`] with
    /// `workers` lanes — the streaming equivalent of
    /// [`crate::TraceRecorder::finish`].
    pub fn into_trace(&self, workers: usize) -> Trace {
        let mut t = Trace::from_parts(workers, self.take());
        t.normalize();
        t
    }
}

/// Streaming newline-delimited-JSON writer: one flat object per span.
///
/// The float fields use Rust's shortest-round-trip formatting, so a
/// parsed-back trace ([`parse_ndjson`]) reproduces the original `f64`
/// bits exactly and its [`Trace::canonical`] projection is
/// byte-identical to the buffered run's.
#[derive(Debug)]
pub struct NdjsonSink<W: Write> {
    out: W,
}

impl NdjsonSink<io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream ndjson spans into it.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(NdjsonSink {
            out: io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write> NdjsonSink<W> {
    /// Wrap an arbitrary writer.
    pub fn new(out: W) -> Self {
        NdjsonSink { out }
    }
}

impl<W: Write + Send> TraceSink for NdjsonSink<W> {
    fn flush_epoch(&mut self, spans: &[TraceEvent]) -> io::Result<()> {
        for e in spans {
            writeln!(self.out, "{}", ndjson_line(e))?;
        }
        Ok(())
    }

    fn close(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Incremental Chrome trace-event writer: emits the same JSON array as
/// [`crate::chrome::to_chrome_json`], but one epoch at a time, so the
/// full document never has to exist in memory.
#[derive(Debug)]
pub struct ChromeStreamSink<W: Write> {
    out: W,
    first: bool,
    opened: bool,
}

impl ChromeStreamSink<io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream Chrome JSON into it.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(ChromeStreamSink::new(io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write> ChromeStreamSink<W> {
    /// Wrap an arbitrary writer. Nothing is written until the first
    /// epoch arrives (or [`TraceSink::close`], for an empty stream).
    pub fn new(out: W) -> Self {
        ChromeStreamSink {
            out,
            first: true,
            opened: false,
        }
    }
}

impl<W: Write + Send> TraceSink for ChromeStreamSink<W> {
    fn flush_epoch(&mut self, spans: &[TraceEvent]) -> io::Result<()> {
        if !self.opened {
            self.out.write_all(b"[")?;
            self.opened = true;
        }
        for e in spans {
            if !self.first {
                self.out.write_all(b",")?;
            }
            self.first = false;
            self.out
                .write_all(crate::chrome::chrome_event_json(e).as_bytes())?;
        }
        Ok(())
    }

    fn close(&mut self) -> io::Result<()> {
        if !self.opened {
            self.out.write_all(b"[")?;
            self.opened = true;
        }
        self.out.write_all(b"]")?;
        self.out.flush()
    }
}

/// Non-blocking forwarding sink for live subscribers (the `serve`
/// streaming path): epochs are `try_send`-ed over a bounded channel,
/// and epochs the receiver cannot keep up with are *dropped* (counted
/// in [`ChannelSink::dropped`]) rather than stalling the simulation.
#[derive(Debug)]
pub struct ChannelSink {
    tx: SyncSender<Vec<TraceEvent>>,
    dropped: Arc<std::sync::atomic::AtomicU64>,
}

impl ChannelSink {
    /// Forward epochs into `tx`.
    pub fn new(tx: SyncSender<Vec<TraceEvent>>) -> Self {
        ChannelSink {
            tx,
            dropped: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Shared counter of spans dropped because the channel was full.
    pub fn dropped(&self) -> Arc<std::sync::atomic::AtomicU64> {
        Arc::clone(&self.dropped)
    }
}

impl TraceSink for ChannelSink {
    fn flush_epoch(&mut self, spans: &[TraceEvent]) -> io::Result<()> {
        match self.tx.try_send(spans.to_vec()) {
            Ok(()) | Err(TrySendError::Disconnected(_)) => {}
            Err(TrySendError::Full(_)) => {
                self.dropped
                    .fetch_add(spans.len() as u64, std::sync::atomic::Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

/// A sink that discards everything — for memory benchmarking the
/// recorder's streaming path without I/O cost.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn flush_epoch(&mut self, _spans: &[TraceEvent]) -> io::Result<()> {
        Ok(())
    }
}

/// One span as a flat ndjson object.
pub fn ndjson_line(e: &TraceEvent) -> String {
    format!(
        r#"{{"worker":{},"kernel":{},"task_id":{},"start":{:?},"end":{:?}}}"#,
        e.worker,
        crate::chrome::json_string(&e.kernel),
        e.task_id,
        e.start,
        e.end
    )
}

/// Parse an ndjson span stream (as written by [`NdjsonSink`]) back into
/// a trace — the bridge from a streamed file to the canonical
/// projection the CI determinism gates diff. The trace is *not*
/// normalized; workers is grown to cover every span.
pub fn parse_ndjson(input: &str) -> Result<Trace, String> {
    let mut events = Vec::new();
    let mut workers = 0usize;
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let e = parse_span_line(line).map_err(|m| format!("line {}: {}", idx + 1, m))?;
        workers = workers.max(e.worker + 1);
        events.push(e);
    }
    Ok(Trace::from_parts(workers, events))
}

/// Parse one `{"worker":..,"kernel":..,"task_id":..,"start":..,"end":..}`
/// object. Specialized to the flat shape [`ndjson_line`] emits.
fn parse_span_line(line: &str) -> Result<TraceEvent, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let (mut worker, mut kernel, mut task_id, mut start, mut end) = (None, None, None, None, None);
    let mut rest = inner;
    while !rest.trim().is_empty() {
        let (key, after_key) = take_json_string(rest.trim_start())?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or("missing ':' after key")?
            .trim_start();
        let after_value = if after_colon.starts_with('"') {
            let (val, tail) = take_json_string(after_colon)?;
            if key == "kernel" {
                kernel = Some(val);
            }
            tail
        } else {
            let stop = after_colon.find(',').unwrap_or(after_colon.len());
            let raw = after_colon[..stop].trim();
            let num: f64 = raw.parse().map_err(|_| format!("bad number {raw:?}"))?;
            match key.as_str() {
                "worker" => worker = Some(num as usize),
                "task_id" => task_id = Some(num as u64),
                "start" => start = Some(num),
                "end" => end = Some(num),
                _ => {}
            }
            &after_colon[stop..]
        };
        rest = after_value
            .trim_start()
            .strip_prefix(',')
            .unwrap_or(after_value);
    }
    Ok(TraceEvent {
        worker: worker.ok_or("missing worker")?,
        kernel: kernel.ok_or("missing kernel")?,
        task_id: task_id.ok_or("missing task_id")?,
        start: start.ok_or("missing start")?,
        end: end.ok_or("missing end")?,
    })
}

/// Read a leading JSON string literal, returning `(decoded, rest)`.
fn take_json_string(s: &str) -> Result<(String, &str), String> {
    let body = s.strip_prefix('"').ok_or("expected '\"'")?;
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &body[i + 1..])),
            '\\' => match chars.next().map(|(_, c)| c) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.into(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn collect_sink_round_trips_epochs() {
        let sink = CollectSink::new();
        let handle = sink.handle();
        let mut boxed: Box<dyn TraceSink> = Box::new(sink);
        boxed.flush_epoch(&[ev(0, "a", 0, 0.0, 1.0)]).unwrap();
        boxed.flush_epoch(&[ev(1, "b", 1, 1.0, 2.0)]).unwrap();
        boxed.close().unwrap();
        let t = handle.into_trace(2);
        assert_eq!(t.len(), 2);
        assert!(handle.is_empty());
    }

    #[test]
    fn ndjson_round_trip_is_exact() {
        let spans = vec![
            ev(0, "dgemm", 3, 0.001, 0.002),
            ev(7, "we\"ird\\k", 4, 1e-7, 2.5e-7),
            ev(1, "~backoff", 5, 12.25, 13.5),
        ];
        let mut buf = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf);
            sink.flush_epoch(&spans).unwrap();
            sink.close().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_ndjson(&text).unwrap();
        assert_eq!(back.spans(), &spans[..]);
        assert_eq!(back.workers, 8);
    }

    #[test]
    fn ndjson_parse_rejects_garbage() {
        assert!(parse_ndjson("not json\n").is_err());
        assert!(parse_ndjson("{\"worker\":0}\n").is_err());
        let err =
            parse_ndjson("{\"worker\":0,\"kernel\":\"k\",\"task_id\":1,\"start\":x,\"end\":1}")
                .unwrap_err();
        assert!(err.contains("line 1"), "got {err}");
    }

    #[test]
    fn chrome_stream_matches_buffered_export() {
        let spans = vec![
            ev(0, "dgemm", 3, 0.001, 0.002),
            ev(1, "trsm", 4, 0.0, 0.0005),
        ];
        let mut buf = Vec::new();
        {
            let mut sink = ChromeStreamSink::new(&mut buf);
            sink.flush_epoch(&spans[..1]).unwrap();
            sink.flush_epoch(&spans[1..]).unwrap();
            sink.close().unwrap();
        }
        let streamed = String::from_utf8(buf).unwrap();
        let buffered = crate::chrome::to_chrome_json(&Trace::from_parts(2, spans));
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn chrome_stream_empty_is_empty_array() {
        let mut buf = Vec::new();
        {
            let mut sink = ChromeStreamSink::new(&mut buf);
            sink.close().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "[]");
    }

    #[test]
    fn channel_sink_drops_instead_of_blocking() {
        let (tx, rx) = sync_channel(1);
        let mut sink = ChannelSink::new(tx);
        let dropped = sink.dropped();
        sink.flush_epoch(&[ev(0, "a", 0, 0.0, 1.0)]).unwrap();
        // Channel full: the second epoch is counted, not delivered.
        sink.flush_epoch(&[ev(0, "b", 1, 1.0, 2.0), ev(1, "c", 2, 1.0, 2.0)])
            .unwrap();
        assert_eq!(dropped.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(rx.recv().unwrap().len(), 1);
        drop(rx);
        // Disconnected receiver is not an error either.
        sink.flush_epoch(&[ev(0, "d", 3, 2.0, 3.0)]).unwrap();
    }
}
