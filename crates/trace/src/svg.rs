//! SVG Gantt rendering of traces (paper Figs. 6–7).
//!
//! "After the completion of the algorithm, the trace can be converted to an
//! SVG file that visualizes the trace and may be rasterized at the
//! appropriate resolution" — §V-A. One horizontal lane per worker, one
//! colored rectangle per task, a time axis, and a kernel legend.
//!
//! To compare a real and a simulated trace side by side at the *same time
//! scale* (as Figs. 6 and 7 do), pass an explicit `time_span` in
//! [`SvgOptions`] covering both makespans.

use crate::color::ColorMap;
use crate::fault::{base_kernel, span_kind, SpanKind};
use crate::Trace;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total drawing width in pixels (including margins).
    pub width: f64,
    /// Height of one worker lane in pixels.
    pub lane_height: f64,
    /// Vertical gap between lanes.
    pub lane_gap: f64,
    /// Fixed time span (seconds) for the x-axis. `None` uses the trace's
    /// own `t_max`, which is what you want for standalone renders.
    pub time_span: Option<f64>,
    /// Draw the kernel-color legend below the lanes.
    pub legend: bool,
    /// Chart title drawn above the lanes (empty = none).
    pub title: String,
    /// Number of x-axis tick marks.
    pub ticks: usize,
    /// Custom lane labels (e.g. `n0.w3` / `n1.nic0` for cluster traces).
    /// Lanes beyond the vector fall back to their numeric index; empty
    /// means all-numeric.
    pub lane_names: Vec<String>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 1200.0,
            lane_height: 14.0,
            lane_gap: 2.0,
            time_span: None,
            legend: true,
            title: String::new(),
            ticks: 10,
            lane_names: Vec::new(),
        }
    }
}

const MARGIN_LEFT: f64 = 60.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 28.0;
const AXIS_HEIGHT: f64 = 30.0;
const LEGEND_ROW: f64 = 18.0;

/// Render a trace to an SVG document string.
pub fn render(trace: &Trace, opts: &SvgOptions) -> String {
    render_spans(trace.workers, trace.spans(), opts)
}

/// Windowed/streaming mode: render a bare span window (one flush epoch
/// from a [`crate::TraceSink`], or any slice of a larger trace) without
/// materializing a full [`Trace`]. Set [`SvgOptions::time_span`] to the
/// full run's extent to keep windows of one run on a common scale.
pub fn render_spans(workers: usize, spans: &[crate::TraceEvent], opts: &SvgOptions) -> String {
    let span = opts
        .time_span
        .unwrap_or_else(|| spans.iter().map(|e| e.end).fold(0.0, f64::max))
        .max(1e-12);
    let plot_w = (opts.width - MARGIN_LEFT - MARGIN_RIGHT).max(10.0);
    let lanes_h = workers as f64 * (opts.lane_height + opts.lane_gap);
    // Color and legend by *base* kernel: fault-marked spans reuse their
    // kernel's color with distinct stroke/opacity styling, and backoff
    // spans have no kernel of their own. Fault-free traces render
    // byte-identically to the pre-fault renderer.
    let mut labels: Vec<String> = Vec::new();
    for e in spans {
        let b = base_kernel(&e.kernel);
        if !b.is_empty() && !labels.iter().any(|s| s == b) {
            labels.push(b.to_string());
        }
    }
    let legend_h = if opts.legend {
        LEGEND_ROW * ((labels.len() as f64 / 4.0).ceil().max(1.0)) + 8.0
    } else {
        0.0
    };
    let height = MARGIN_TOP + lanes_h + AXIS_HEIGHT + legend_h;
    let colors = ColorMap::from_labels(labels.iter().cloned());

    let mut s = String::with_capacity(4096 + spans.len() * 96);
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opts.width, height, opts.width, height
    );
    let _ = writeln!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if !opts.title.is_empty() {
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="18" font-family="sans-serif" font-size="13" font-weight="bold">{}</text>"#,
            MARGIN_LEFT,
            escape(&opts.title)
        );
    }

    // Lane labels and background stripes.
    for w in 0..workers {
        let y = MARGIN_TOP + w as f64 * (opts.lane_height + opts.lane_gap);
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#f4f4f4"/>"##,
            MARGIN_LEFT, y, plot_w, opts.lane_height
        );
        let name = opts
            .lane_names
            .get(w)
            .map_or_else(|| w.to_string(), |n| n.clone());
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="9" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 4.0,
            y + opts.lane_height * 0.75,
            escape(&name)
        );
    }

    // Task rectangles.
    for e in spans {
        if e.worker >= workers {
            continue;
        }
        let x = MARGIN_LEFT + e.start / span * plot_w;
        let w_px = ((e.end - e.start) / span * plot_w).max(0.25);
        let y = MARGIN_TOP + e.worker as f64 * (opts.lane_height + opts.lane_gap);
        let kind = span_kind(&e.kernel);
        let fill = match kind {
            SpanKind::Backoff => "#e0e0e0",
            _ => colors.color(base_kernel(&e.kernel)),
        };
        let style = match kind {
            SpanKind::Normal => "",
            SpanKind::Failed => r##" fill-opacity="0.45" stroke="#c62828" stroke-width="1""##,
            SpanKind::Lost => {
                r##" fill-opacity="0.2" stroke="#757575" stroke-width="1" stroke-dasharray="3,2""##
            }
            SpanKind::Backoff => {
                r##" stroke="#9e9e9e" stroke-width="0.5" stroke-dasharray="1.5,1.5""##
            }
        };
        let _ = writeln!(
            s,
            r#"<rect x="{:.2}" y="{:.1}" width="{:.2}" height="{:.1}" fill="{}"{}><title>{} #{} [{:.6}, {:.6}]</title></rect>"#,
            x,
            y,
            w_px,
            opts.lane_height,
            fill,
            style,
            escape(&e.kernel),
            e.task_id,
            e.start,
            e.end
        );
    }

    // Time axis.
    let axis_y = MARGIN_TOP + lanes_h + 12.0;
    let _ = writeln!(
        s,
        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black" stroke-width="1"/>"#,
        MARGIN_LEFT,
        axis_y,
        MARGIN_LEFT + plot_w,
        axis_y
    );
    let ticks = opts.ticks.max(1);
    for i in 0..=ticks {
        let frac = i as f64 / ticks as f64;
        let x = MARGIN_LEFT + frac * plot_w;
        let t = frac * span;
        let _ = writeln!(
            s,
            r#"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="black" stroke-width="1"/>"#,
            axis_y,
            axis_y + 4.0
        );
        let _ = writeln!(
            s,
            r#"<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="9" text-anchor="middle">{}</text>"#,
            axis_y + 14.0,
            format_time(t)
        );
    }

    // Legend.
    if opts.legend {
        let base_y = MARGIN_TOP + lanes_h + AXIS_HEIGHT;
        for (i, label) in labels.iter().enumerate() {
            let col = i % 4;
            let row = i / 4;
            let x = MARGIN_LEFT + col as f64 * (plot_w / 4.0);
            let y = base_y + row as f64 * LEGEND_ROW;
            let _ = writeln!(
                s,
                r#"<rect x="{:.1}" y="{:.1}" width="12" height="12" fill="{}"/>"#,
                x,
                y,
                colors.color(label)
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10">{}</text>"#,
                x + 16.0,
                y + 10.0,
                escape(label)
            );
        }
    }

    s.push_str("</svg>\n");
    s
}

/// Render with default options.
pub fn render_default(trace: &Trace) -> String {
    render(trace, &SvgOptions::default())
}

fn format_time(t: f64) -> String {
    if t == 0.0 {
        "0".to_string()
    } else if t < 1e-3 {
        format!("{:.0}µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:.1}ms", t * 1e3)
    } else {
        format!("{t:.2}s")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn trace() -> Trace {
        let mut t = Trace::new(2);
        t.push(TraceEvent {
            worker: 0,
            kernel: "gemm".into(),
            task_id: 0,
            start: 0.0,
            end: 1.0,
        });
        t.push(TraceEvent {
            worker: 1,
            kernel: "trsm".into(),
            task_id: 1,
            start: 0.5,
            end: 2.0,
        });
        t
    }

    #[test]
    fn renders_valid_svg_shell() {
        let svg = render_default(&trace());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One background + per-lane stripes + 2 task rects + legend swatches.
        assert!(svg.matches("<rect").count() >= 5);
    }

    #[test]
    fn contains_kernel_names_and_colors() {
        let svg = render_default(&trace());
        assert!(svg.contains("gemm"));
        assert!(svg.contains("trsm"));
        assert!(svg.contains(crate::color::PALETTE[0]));
        assert!(svg.contains(crate::color::PALETTE[1]));
    }

    #[test]
    fn fixed_time_span_scales_positions() {
        let t = trace();
        let narrow = render(
            &t,
            &SvgOptions {
                time_span: Some(2.0),
                ..Default::default()
            },
        );
        let wide = render(
            &t,
            &SvgOptions {
                time_span: Some(4.0),
                ..Default::default()
            },
        );
        // Same events, different widths: documents must differ.
        assert_ne!(narrow, wide);
    }

    #[test]
    fn empty_trace_renders() {
        let svg = render_default(&Trace::new(3));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn custom_lane_names_replace_numeric_labels() {
        let svg = render(
            &trace(),
            &SvgOptions {
                lane_names: vec!["n0.w0".into(), "n0.nic0".into()],
                ..Default::default()
            },
        );
        assert!(svg.contains(">n0.w0</text>"));
        assert!(svg.contains(">n0.nic0</text>"));
        assert!(!svg.contains(r#"text-anchor="end">0</text>"#));
    }

    #[test]
    fn fault_marked_spans_get_distinct_styling() {
        let mut t = Trace::new(2);
        t.push(TraceEvent {
            worker: 0,
            kernel: "dgemm".into(),
            task_id: 0,
            start: 0.0,
            end: 1.0,
        });
        t.push(TraceEvent {
            worker: 0,
            kernel: "dgemm!fail".into(),
            task_id: 1,
            start: 1.0,
            end: 1.5,
        });
        t.push(TraceEvent {
            worker: 1,
            kernel: "dpotrf!lost".into(),
            task_id: 2,
            start: 0.0,
            end: 0.5,
        });
        t.push(TraceEvent {
            worker: 1,
            kernel: "~backoff".into(),
            task_id: 1,
            start: 0.5,
            end: 0.75,
        });
        let svg = render_default(&t);
        // Failed attempts: kernel color, red stroke; lost work: dashed.
        assert!(svg.contains(r##"stroke="#c62828""##));
        assert!(svg.contains(r#"stroke-dasharray="3,2""#));
        assert!(svg.contains(r#"stroke-dasharray="1.5,1.5""#));
        // The legend shows base kernels only, never the marked variants.
        assert!(svg.contains(">dgemm</text>"));
        assert!(!svg.contains(">dgemm!fail</text>"));
        assert!(!svg.contains(">~backoff</text>"));
        // Failed span reuses its base kernel's color.
        let dgemm_color = crate::color::PALETTE[0];
        assert!(svg.matches(dgemm_color).count() >= 3);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut t = Trace::new(1);
        t.push(TraceEvent {
            worker: 0,
            kernel: "a<b&c".into(),
            task_id: 0,
            start: 0.0,
            end: 1.0,
        });
        let svg = render_default(&t);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }

    #[test]
    fn time_format_picks_unit() {
        assert_eq!(format_time(0.0), "0");
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
