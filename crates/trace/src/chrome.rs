//! Chrome trace-event export (`chrome://tracing` / Perfetto JSON).
//!
//! An alternative to the SVG renderer: load the emitted JSON in any
//! Chromium browser's `chrome://tracing` page or in <https://ui.perfetto.dev>
//! to explore a trace interactively. Times are exported in microseconds
//! ("complete" `X` events, one per task, `tid` = worker lane).
//!
//! With the `metrics` feature, [`to_chrome_json_with_metrics`] also emits
//! counter tracks (`C` events): a `running_tasks` concurrency track
//! derived from the trace's own event boundaries, plus one flat track per
//! counter in a [`supersim_metrics::MetricsSnapshot`], so wakeup counts
//! and TEQ traffic are visible alongside the timeline they came from.

use crate::fault::{span_kind, SpanKind};
use crate::{Trace, TraceEvent};
use std::fmt::Write as _;

/// Extra `cname` field (a Chrome trace-viewer reserved color class) for
/// fault-marked spans, so failed attempts, lost work and backoff read
/// at a glance in the timeline. Normal spans add nothing — fault-free
/// exports stay byte-identical.
fn fault_cname(kernel: &str) -> &'static str {
    match span_kind(kernel) {
        SpanKind::Normal => "",
        SpanKind::Failed => r#","cname":"terrible""#,
        SpanKind::Lost => r#","cname":"bad""#,
        SpanKind::Backoff => r#","cname":"grey""#,
    }
}

/// One span as a complete `X` Chrome trace event (pid 0, `tid` =
/// worker lane) — the unit the streaming exporter
/// ([`crate::sink::ChromeStreamSink`]) emits incrementally.
pub fn chrome_event_json(e: &TraceEvent) -> String {
    format!(
        r#"{{"name":{},"ph":"X"{},"ts":{:.3},"dur":{:.3},"pid":0,"tid":{},"args":{{"task_id":{}}}}}"#,
        json_string(&e.kernel),
        fault_cname(&e.kernel),
        e.start * 1e6,
        e.duration() * 1e6,
        e.worker,
        e.task_id
    )
}

/// Serialize a trace to the Chrome trace-event JSON array format.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut s = String::with_capacity(64 + trace.len() * 96);
    s.push('[');
    let mut first = true;
    push_task_events(&mut s, trace, &mut first);
    s.push(']');
    s
}

/// How one trace lane should appear in a grouped Chrome export: which
/// process row it belongs to and what the process/thread rows are called.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneGroup {
    /// Process id the lane is grouped under (e.g. the cluster node index).
    pub pid: usize,
    /// Process row label (e.g. `"node 0"`). Lanes sharing a pid should
    /// agree on this; the first lane's name wins.
    pub process_name: String,
    /// Thread row label (e.g. `"w3"` or `"nic0"`).
    pub thread_name: String,
}

/// Serialize a trace with lanes grouped into named processes — one
/// Perfetto process row per cluster node, with its compute workers and
/// NIC lanes as named threads. `lanes[w]` describes trace lane `w`;
/// lanes beyond the slice fall back to pid 0 / numeric names.
///
/// Emits `M` (metadata) `process_name`/`thread_name` events followed by
/// the same `X` events as [`to_chrome_json`], with `pid`/`tid` taken from
/// the grouping.
pub fn to_chrome_json_grouped(trace: &Trace, lanes: &[LaneGroup]) -> String {
    let mut s = String::with_capacity(256 + trace.len() * 96 + lanes.len() * 96);
    s.push('[');
    let mut first = true;
    let mut named_pids: Vec<usize> = Vec::new();
    for (w, lane) in lanes.iter().enumerate() {
        if !named_pids.contains(&lane.pid) {
            named_pids.push(lane.pid);
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                r#"{{"name":"process_name","ph":"M","pid":{},"args":{{"name":{}}}}}"#,
                lane.pid,
                json_string(&lane.process_name)
            );
        }
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":{}}}}}"#,
            lane.pid,
            w,
            json_string(&lane.thread_name)
        );
    }
    for e in trace.spans() {
        if !first {
            s.push(',');
        }
        first = false;
        let pid = lanes.get(e.worker).map_or(0, |l| l.pid);
        let _ = write!(
            s,
            r#"{{"name":{},"ph":"X"{},"ts":{:.3},"dur":{:.3},"pid":{},"tid":{},"args":{{"task_id":{}}}}}"#,
            json_string(&e.kernel),
            fault_cname(&e.kernel),
            e.start * 1e6,
            e.duration() * 1e6,
            pid,
            e.worker,
            e.task_id
        );
    }
    s.push(']');
    s
}

/// Append one `X` event per task to `s` (comma-separated, updating the
/// leading-comma state in `first`).
fn push_task_events(s: &mut String, trace: &Trace, first: &mut bool) {
    for e in trace.spans() {
        if !*first {
            s.push(',');
        }
        *first = false;
        s.push_str(&chrome_event_json(e));
    }
}

/// Append one `C` (counter) sample to `s`.
#[cfg(feature = "metrics")]
fn push_counter_sample(s: &mut String, name: &str, ts_us: f64, value: f64, first: &mut bool) {
    if !*first {
        s.push(',');
    }
    *first = false;
    let _ = write!(
        s,
        r#"{{"name":{},"ph":"C","ts":{:.3},"pid":0,"args":{{"value":{}}}}}"#,
        json_string(name),
        ts_us,
        value
    );
}

/// Serialize a trace plus metrics counter tracks.
///
/// Emits the same `X` events as [`to_chrome_json`], then:
///
/// * a `running_tasks` counter track sampled at every task start/end
///   boundary (the instantaneous parallelism profile of the trace), and
/// * one flat counter track per counter in `snap`, sampled at the trace
///   origin and at its makespan, so Perfetto renders the run's totals as
///   horizontal bands next to the timeline.
#[cfg(feature = "metrics")]
pub fn to_chrome_json_with_metrics(
    trace: &Trace,
    snap: &supersim_metrics::MetricsSnapshot,
) -> String {
    let mut s = String::with_capacity(64 + trace.len() * 128 + snap.counters.len() * 160);
    s.push('[');
    let mut first = true;
    push_task_events(&mut s, trace, &mut first);

    // Concurrency track: +1 at each start, -1 at each end, cumulative sum
    // in timestamp order (ends before starts on ties, so a task handing
    // off to another at the same instant does not double-count).
    let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(trace.len() * 2);
    for e in trace.spans() {
        deltas.push((e.start, 1));
        deltas.push((e.end, -1));
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut running = 0i64;
    for (t, d) in deltas {
        running += d;
        push_counter_sample(&mut s, "running_tasks", t * 1e6, running as f64, &mut first);
    }

    // Flat per-counter tracks across the whole timeline.
    let end_us = trace.makespan() * 1e6;
    for c in &snap.counters {
        push_counter_sample(&mut s, &c.name, 0.0, c.value as f64, &mut first);
        if end_us > 0.0 {
            push_counter_sample(&mut s, &c.name, end_us, c.value as f64, &mut first);
        }
    }

    s.push(']');
    s
}

pub(crate) fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn trace() -> Trace {
        let mut t = Trace::new(2);
        t.push(TraceEvent {
            worker: 0,
            kernel: "dgemm".into(),
            task_id: 3,
            start: 0.001,
            end: 0.002,
        });
        t.push(TraceEvent {
            worker: 1,
            kernel: "we\"ird".into(),
            task_id: 4,
            start: 0.0,
            end: 0.0005,
        });
        t
    }

    #[test]
    fn emits_valid_json() {
        let json = to_chrome_json(&trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["name"], "dgemm");
        assert_eq!(arr[0]["tid"], 0);
        assert_eq!(arr[0]["args"]["task_id"], 3);
        // Microsecond conversion.
        assert!((arr[0]["ts"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
        assert!((arr[0]["dur"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn escapes_special_characters() {
        let json = to_chrome_json(&trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[1]["name"], "we\"ird");
    }

    #[test]
    fn fault_marked_spans_carry_color_classes() {
        let mut t = Trace::new(1);
        for (i, k) in ["dgemm", "dgemm!fail", "~backoff", "dpotrf!lost"]
            .iter()
            .enumerate()
        {
            t.push(TraceEvent {
                worker: 0,
                kernel: (*k).into(),
                task_id: i as u64,
                start: i as f64,
                end: i as f64 + 0.5,
            });
        }
        let json = to_chrome_json(&t);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert!(arr[0].get("cname").is_none(), "normal spans add nothing");
        assert_eq!(arr[1]["cname"], "terrible");
        assert_eq!(arr[2]["cname"], "grey");
        assert_eq!(arr[3]["cname"], "bad");
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(to_chrome_json(&Trace::new(0)), "[]");
    }

    #[test]
    fn grouped_export_emits_process_and_thread_metadata() {
        let lanes = vec![
            LaneGroup {
                pid: 0,
                process_name: "node 0".into(),
                thread_name: "w0".into(),
            },
            LaneGroup {
                pid: 1,
                process_name: "node 1".into(),
                thread_name: "nic0".into(),
            },
        ];
        let json = to_chrome_json_grouped(&trace(), &lanes);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        // 2 process_name + 2 thread_name + 2 X events.
        assert_eq!(arr.len(), 6);
        let meta: Vec<_> = arr.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 4);
        assert!(meta
            .iter()
            .any(|e| e["name"] == "process_name" && e["args"]["name"] == "node 1"));
        assert!(meta
            .iter()
            .any(|e| e["name"] == "thread_name" && e["args"]["name"] == "nic0" && e["pid"] == 1));
        // The X event on lane 1 inherits lane 1's pid.
        let x1 = arr
            .iter()
            .find(|e| e["ph"] == "X" && e["tid"] == 1)
            .unwrap();
        assert_eq!(x1["pid"], 1);
    }

    #[test]
    fn grouped_export_tolerates_missing_lane_info() {
        let json = to_chrome_json_grouped(&trace(), &[]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2, "no metadata, X events only");
        assert!(arr.iter().all(|e| e["pid"] == 0));
    }

    #[test]
    fn shared_pid_named_once() {
        let lanes = vec![
            LaneGroup {
                pid: 0,
                process_name: "node 0".into(),
                thread_name: "w0".into(),
            },
            LaneGroup {
                pid: 0,
                process_name: "node 0".into(),
                thread_name: "w1".into(),
            },
        ];
        let json = to_chrome_json_grouped(&trace(), &lanes);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let names = v
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["name"] == "process_name")
            .count();
        assert_eq!(names, 1);
    }

    #[cfg(feature = "metrics")]
    mod metrics {
        use super::*;
        use supersim_metrics::MetricsSnapshot;

        #[test]
        fn counter_tracks_appended_after_task_events() {
            let mut snap = MetricsSnapshot::default();
            snap.push_counter("teq.wakeup.targeted", 42);
            let json = to_chrome_json_with_metrics(&trace(), &snap);
            let v: serde_json::Value = serde_json::from_str(&json).unwrap();
            let arr = v.as_array().unwrap();
            // 2 X events + 4 running_tasks samples + 2 flat samples.
            assert_eq!(arr.len(), 8);
            let c_events: Vec<_> = arr.iter().filter(|e| e["ph"] == "C").collect();
            assert_eq!(c_events.len(), 6);
            let wakeups: Vec<_> = c_events
                .iter()
                .filter(|e| e["name"] == "teq.wakeup.targeted")
                .collect();
            assert_eq!(wakeups.len(), 2, "value at origin and at makespan");
            assert_eq!(wakeups[0]["args"]["value"].as_f64(), Some(42.0));
        }

        #[test]
        fn running_tasks_track_is_a_parallelism_profile() {
            let json = to_chrome_json_with_metrics(&trace(), &MetricsSnapshot::default());
            let v: serde_json::Value = serde_json::from_str(&json).unwrap();
            let samples: Vec<f64> = v
                .as_array()
                .unwrap()
                .iter()
                .filter(|e| e["name"] == "running_tasks")
                .map(|e| e["args"]["value"].as_f64().unwrap())
                .collect();
            // Events: [0, 0.5ms] and [1ms, 2ms]: 1, 0, 1, 0.
            assert_eq!(samples, vec![1.0, 0.0, 1.0, 0.0]);
        }

        #[test]
        fn empty_trace_with_metrics_has_only_origin_samples() {
            let mut snap = MetricsSnapshot::default();
            snap.push_counter("c", 1);
            let json = to_chrome_json_with_metrics(&Trace::new(0), &snap);
            let v: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v.as_array().unwrap().len(), 1, "no duplicate at ts 0");
        }
    }
}
