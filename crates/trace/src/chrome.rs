//! Chrome trace-event export (`chrome://tracing` / Perfetto JSON).
//!
//! An alternative to the SVG renderer: load the emitted JSON in any
//! Chromium browser's `chrome://tracing` page or in <https://ui.perfetto.dev>
//! to explore a trace interactively. Times are exported in microseconds
//! ("complete" `X` events, one per task, `tid` = worker lane).

use crate::Trace;
use std::fmt::Write as _;

/// Serialize a trace to the Chrome trace-event JSON array format.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut s = String::with_capacity(64 + trace.events.len() * 96);
    s.push('[');
    let mut first = true;
    for e in &trace.events {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            r#"{{"name":{},"ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{},"args":{{"task_id":{}}}}}"#,
            json_string(&e.kernel),
            e.start * 1e6,
            e.duration() * 1e6,
            e.worker,
            e.task_id
        );
    }
    s.push(']');
    s
}

fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn trace() -> Trace {
        let mut t = Trace::new(2);
        t.events.push(TraceEvent {
            worker: 0,
            kernel: "dgemm".into(),
            task_id: 3,
            start: 0.001,
            end: 0.002,
        });
        t.events.push(TraceEvent {
            worker: 1,
            kernel: "we\"ird".into(),
            task_id: 4,
            start: 0.0,
            end: 0.0005,
        });
        t
    }

    #[test]
    fn emits_valid_json() {
        let json = to_chrome_json(&trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["name"], "dgemm");
        assert_eq!(arr[0]["tid"], 0);
        assert_eq!(arr[0]["args"]["task_id"], 3);
        // Microsecond conversion.
        assert!((arr[0]["ts"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
        assert!((arr[0]["dur"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn escapes_special_characters() {
        let json = to_chrome_json(&trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[1]["name"], "we\"ird");
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(to_chrome_json(&Trace::new(0)), "[]");
    }
}
