//! Deterministic kernel-label → color assignment for trace rendering.

/// A categorical palette chosen for adjacent-lane contrast (hex RGB).
///
/// Order matters: labels are assigned palette slots in first-seen order, so
/// renders are stable run-to-run for the same workload.
pub const PALETTE: [&str; 12] = [
    "#4477aa", // blue
    "#ee6677", // red
    "#228833", // green
    "#ccbb44", // yellow
    "#66ccee", // cyan
    "#aa3377", // purple
    "#bbbbbb", // grey
    "#e07b39", // orange
    "#1d6996", // deep blue
    "#73af48", // leaf
    "#94346e", // plum
    "#6f4070", // violet
];

/// Stable mapping from kernel labels to colors.
#[derive(Debug, Clone, Default)]
pub struct ColorMap {
    labels: Vec<String>,
}

impl ColorMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a label list (first-seen order).
    pub fn from_labels<I: IntoIterator<Item = String>>(labels: I) -> Self {
        let mut m = Self::new();
        for l in labels {
            m.intern(&l);
        }
        m
    }

    /// Get (or assign) the palette index for `label`.
    pub fn intern(&mut self, label: &str) -> usize {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i;
        }
        self.labels.push(label.to_string());
        self.labels.len() - 1
    }

    /// Color for a label already interned; falls back to hashing unknown
    /// labels so lookups never fail.
    pub fn color(&self, label: &str) -> &'static str {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => PALETTE[i % PALETTE.len()],
            None => PALETTE[stable_hash(label) as usize % PALETTE.len()],
        }
    }

    /// The interned labels in assignment order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// FNV-1a — tiny, deterministic across runs (unlike `DefaultHasher` seeds).
fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut m = ColorMap::new();
        assert_eq!(m.intern("gemm"), 0);
        assert_eq!(m.intern("trsm"), 1);
        assert_eq!(m.intern("gemm"), 0);
        assert_eq!(m.color("gemm"), PALETTE[0]);
        assert_eq!(m.color("trsm"), PALETTE[1]);
    }

    #[test]
    fn unknown_labels_get_deterministic_color() {
        let m = ColorMap::new();
        let c1 = m.color("mystery");
        let c2 = m.color("mystery");
        assert_eq!(c1, c2);
        assert!(PALETTE.contains(&c1));
    }

    #[test]
    fn palette_wraps() {
        let mut m = ColorMap::new();
        for i in 0..30 {
            m.intern(&format!("k{i}"));
        }
        assert_eq!(m.color("k0"), m.color("k12"));
        assert_ne!(m.color("k0"), m.color("k5"));
    }

    #[test]
    fn from_labels_preserves_order() {
        let m = ColorMap::from_labels(vec!["a".into(), "b".into()]);
        assert_eq!(m.labels(), &["a".to_string(), "b".to_string()]);
    }
}
