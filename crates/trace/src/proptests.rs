//! Property-based tests for the trace layer.

#![cfg(test)]

use crate::{text, Trace, TraceComparison, TraceEvent};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        0usize..8,
        prop_oneof![Just("gemm"), Just("trsm"), Just("potrf"), Just("x_y")],
        0u64..10_000,
        0.0f64..1e3,
        0.0f64..10.0,
    )
        .prop_map(|(worker, kernel, task_id, start, dur)| TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id,
            start,
            end: start + dur,
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(event_strategy(), 0..40).prop_map(|mut events| {
        // Unique task ids (required by comparison semantics).
        for (i, e) in events.iter_mut().enumerate() {
            e.task_id = i as u64;
        }
        Trace::from_parts(8, events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Text format round-trips every event exactly enough for comparison.
    #[test]
    fn text_round_trip(t in trace_strategy()) {
        let written = text::write(&t);
        let back = text::parse(&written).unwrap();
        prop_assert_eq!(back.workers, t.workers);
        prop_assert_eq!(back.len(), t.len());
        for (a, b) in t.spans().iter().zip(back.spans().iter()) {
            prop_assert_eq!(a.worker, b.worker);
            prop_assert_eq!(&a.kernel, &b.kernel);
            prop_assert_eq!(a.task_id, b.task_id);
            prop_assert!((a.start - b.start).abs() < 1e-6);
            prop_assert!((a.end - b.end).abs() < 1e-6);
        }
    }

    /// Normalize is idempotent and shifts the earliest start to zero.
    #[test]
    fn normalize_idempotent(t in trace_strategy()) {
        let mut once = t.clone();
        once.normalize();
        let mut twice = once.clone();
        twice.normalize();
        prop_assert_eq!(&once, &twice);
        if !once.is_empty() {
            let min_start = once.spans().iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
            prop_assert!(min_start.abs() < 1e-12);
        }
    }

    /// Normalization preserves the makespan.
    #[test]
    fn normalize_preserves_makespan(t in trace_strategy()) {
        let before = t.makespan();
        let mut n = t.clone();
        n.normalize();
        prop_assert!((n.makespan() - before).abs() < 1e-9);
    }

    /// A trace always compares perfectly with itself.
    #[test]
    fn self_comparison_perfect(t in trace_strategy()) {
        let cmp = TraceComparison::compare(&t, &t);
        prop_assert_eq!(cmp.makespan_rel_error, 0.0);
        prop_assert!(cmp.same_kernel_population);
        prop_assert_eq!(cmp.matched_tasks, t.len());
        prop_assert_eq!(cmp.mean_start_shift, 0.0);
        if !t.is_empty() {
            prop_assert_eq!(cmp.placement_agreement, 1.0);
        }
    }

    /// Uniform time scaling changes the makespan error by exactly the
    /// scale factor.
    #[test]
    fn comparison_detects_uniform_scaling(t in trace_strategy(), scale in 1.01f64..3.0) {
        prop_assume!(t.makespan() > 1e-9);
        let mut scaled = t.clone();
        for e in scaled.spans_mut() {
            e.start *= scale;
            e.end *= scale;
        }
        let cmp = TraceComparison::compare(&t, &scaled);
        prop_assert!((cmp.makespan_rel_error - (scale - 1.0)).abs() < 1e-9);
    }

    /// SVG rendering never panics and always yields a well-formed shell.
    #[test]
    fn svg_always_renders(t in trace_strategy()) {
        let mut t = t;
        t.normalize();
        let svg = crate::svg::render_default(&t);
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }

    /// ASCII rendering yields one row per worker lane plus a legend.
    #[test]
    fn ascii_row_count(t in trace_strategy(), cols in 4usize..100) {
        let mut t = t;
        t.normalize();
        let art = crate::ascii::render(&t, cols);
        prop_assert_eq!(art.lines().count(), t.workers + 1);
    }

    /// Stats busy time equals the sum of event durations.
    #[test]
    fn stats_busy_time_is_duration_sum(t in trace_strategy()) {
        let stats = crate::stats::TraceStats::of(&t);
        let sum: f64 = t.spans().iter().map(|e| e.duration()).sum();
        prop_assert!((stats.busy_time - sum).abs() < 1e-9);
        let per_kernel: usize = stats.kernels.values().map(|k| k.count).sum();
        prop_assert_eq!(per_kernel, t.len());
    }
}
