//! ASCII rendering of traces for terminals and quick example output.
//!
//! Each worker lane becomes one text row; time is discretized into columns.
//! Each kernel class gets a letter (first letter of its label, uppercased
//! and disambiguated); idle time is `.`. Fault-marked spans (see
//! [`crate::fault`]) use fixed lowercase/symbol glyphs — `x` failed
//! attempt, `?` lost work, `~` retry backoff — that can never collide
//! with the uppercase kernel glyphs.

use crate::fault::{span_kind, SpanKind};
use crate::Trace;

/// Render a trace as ASCII art, `cols` characters wide.
pub fn render(trace: &Trace, cols: usize) -> String {
    let names: Vec<String> = (0..trace.workers).map(|w| w.to_string()).collect();
    render_labeled(trace, cols, &names)
}

/// Render with custom lane labels (e.g. `n0.w3` / `n1.nic0` for cluster
/// traces). `names[w]` labels lane `w`; missing names fall back to the
/// numeric index.
pub fn render_labeled(trace: &Trace, cols: usize, names: &[String]) -> String {
    render_core(trace.workers, trace.spans(), cols, names, 0.0)
}

/// Windowed/streaming mode: render a bare span window (e.g. one flush
/// epoch from a [`crate::TraceSink`], or any slice of a larger trace)
/// without materializing a full [`Trace`]. The time axis covers the
/// window's own extent.
pub fn render_spans(workers: usize, spans: &[crate::TraceEvent], cols: usize) -> String {
    let names: Vec<String> = (0..workers).map(|w| w.to_string()).collect();
    render_spans_labeled(workers, spans, cols, &names)
}

/// [`render_spans`] with custom lane labels.
pub fn render_spans_labeled(
    workers: usize,
    spans: &[crate::TraceEvent],
    cols: usize,
    names: &[String],
) -> String {
    let t0 = spans.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
    let t0 = if t0.is_finite() { t0 } else { 0.0 };
    render_core(workers, spans, cols, names, t0)
}

/// Shared lane rasterizer; `t0` anchors the left edge (0 for whole
/// traces, the window start for streamed spans).
fn render_core(
    workers: usize,
    spans: &[crate::TraceEvent],
    cols: usize,
    names: &[String],
    t0: f64,
) -> String {
    let cols = cols.max(4);
    let span = (spans.iter().map(|e| e.end).fold(0.0, f64::max) - t0).max(1e-12);
    let mut labels: Vec<String> = Vec::new();
    for e in spans {
        if span_kind(&e.kernel) == SpanKind::Normal && !labels.iter().any(|l| l == &e.kernel) {
            labels.push(e.kernel.clone());
        }
    }
    let glyphs = assign_glyphs(&labels);

    let mut rows: Vec<Vec<char>> = vec![vec!['.'; cols]; workers];
    let (mut any_failed, mut any_lost, mut any_backoff) = (false, false, false);
    for e in spans {
        if e.worker >= workers {
            continue;
        }
        let g = match span_kind(&e.kernel) {
            SpanKind::Normal => glyph_for(&glyphs, &labels, &e.kernel),
            SpanKind::Failed => {
                any_failed = true;
                'x'
            }
            SpanKind::Lost => {
                any_lost = true;
                '?'
            }
            SpanKind::Backoff => {
                any_backoff = true;
                '~'
            }
        };
        let c0 = (((e.start - t0) / span) * cols as f64).floor() as usize;
        let c1 = (((e.end - t0) / span) * cols as f64).ceil() as usize;
        let c0 = c0.min(cols - 1);
        let c1 = c1.clamp(c0 + 1, cols);
        for cell in rows[e.worker][c0..c1].iter_mut() {
            *cell = g;
        }
    }

    let fallback: Vec<String> = (names.len()..workers).map(|w| w.to_string()).collect();
    let label = |w: usize| -> &str {
        match names.get(w) {
            Some(s) => s,
            None => &fallback[w - names.len()],
        }
    };
    let width = (0..workers)
        .map(|w| label(w).len())
        .max()
        .unwrap_or(1)
        .max(3);
    let mut out = String::new();
    for (w, row) in rows.iter().enumerate() {
        out.push_str(&format!("{:>width$} |", label(w)));
        out.extend(row.iter());
        out.push('\n');
    }
    // Legend.
    out.push_str("    ");
    for (label, g) in labels.iter().zip(glyphs.iter()) {
        out.push_str(&format!(" {g}={label}"));
    }
    if any_failed {
        out.push_str(" x=failed");
    }
    if any_lost {
        out.push_str(" ?=lost");
    }
    if any_backoff {
        out.push_str(" ~=backoff");
    }
    out.push('\n');
    out
}

fn assign_glyphs(labels: &[String]) -> Vec<char> {
    let mut used = Vec::new();
    let mut glyphs = Vec::with_capacity(labels.len());
    for label in labels {
        let mut g = label
            .chars()
            .find(|c| c.is_ascii_alphanumeric())
            .unwrap_or('#')
            .to_ascii_uppercase();
        if used.contains(&g) {
            // Walk the label for an unused letter, then fall back to digits.
            g = label
                .chars()
                .map(|c| c.to_ascii_uppercase())
                .find(|c| c.is_ascii_alphanumeric() && !used.contains(c))
                .or_else(|| ('0'..='9').find(|c| !used.contains(c)))
                .unwrap_or('#');
        }
        used.push(g);
        glyphs.push(g);
    }
    glyphs
}

fn glyph_for(glyphs: &[char], labels: &[String], kernel: &str) -> char {
    labels
        .iter()
        .position(|l| l == kernel)
        .map(|i| glyphs[i])
        .unwrap_or('#')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.into(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn renders_lanes_and_legend() {
        let mut t = Trace::new(2);
        t.push(ev(0, "gemm", 0, 0.0, 0.5));
        t.push(ev(1, "trsm", 1, 0.5, 1.0));
        let art = render(&t, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // 2 lanes + legend
        assert!(lines[0].contains('G'));
        assert!(lines[1].contains('T'));
        assert!(lines[2].contains("G=gemm"));
        assert!(lines[2].contains("T=trsm"));
    }

    #[test]
    fn labeled_lanes_use_names_and_align() {
        let mut t = Trace::new(3);
        t.push(ev(0, "gemm", 0, 0.0, 0.5));
        t.push(ev(2, "trsm", 1, 0.5, 1.0));
        let names = vec!["n0.w0".to_string(), "n0.w1".to_string()];
        let art = render_labeled(&t, 20, &names);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("n0.w0 |"));
        assert!(lines[1].starts_with("n0.w1 |"));
        // Missing name falls back to the numeric index, right-aligned.
        assert!(lines[2].starts_with("    2 |"), "got {:?}", lines[2]);
    }

    #[test]
    fn idle_time_is_dots() {
        let mut t = Trace::new(1);
        t.push(ev(0, "k", 0, 0.8, 1.0));
        let art = render(&t, 10);
        let lane = art.lines().next().unwrap();
        assert!(lane.contains('.'));
        assert!(lane.trim_end().ends_with('K'));
    }

    #[test]
    fn duplicate_first_letters_get_distinct_glyphs() {
        let mut t = Trace::new(1);
        t.push(ev(0, "geqrt", 0, 0.0, 0.3));
        t.push(ev(0, "gemm", 1, 0.3, 0.6));
        let art = render(&t, 12);
        let legend = art.lines().last().unwrap();
        // Two distinct glyphs assigned.
        let g1 = legend
            .split("=geqrt")
            .next()
            .unwrap()
            .chars()
            .last()
            .unwrap();
        let g2 = legend
            .split("=gemm")
            .next()
            .unwrap()
            .chars()
            .last()
            .unwrap();
        assert_ne!(g1, g2);
    }

    #[test]
    fn fault_marks_use_fixed_glyphs_and_legend_entries() {
        let mut t = Trace::new(2);
        t.push(ev(0, "dgemm", 0, 0.0, 0.3));
        t.push(ev(0, "dgemm!fail", 1, 0.3, 0.5));
        t.push(ev(0, "~backoff", 1, 0.5, 0.6));
        t.push(ev(1, "dpotrf!lost", 2, 0.0, 0.4));
        let art = render(&t, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('x'));
        assert!(lines[0].contains('~'));
        assert!(lines[1].contains('?'));
        let legend = lines[2];
        assert!(legend.contains("D=dgemm"));
        assert!(legend.contains("x=failed"));
        assert!(legend.contains("?=lost"));
        assert!(legend.contains("~=backoff"));
        // Marked variants never get their own kernel legend entries.
        assert!(!legend.contains("dgemm!fail"));
    }

    #[test]
    fn empty_trace_renders_legend_only() {
        let art = render(&Trace::new(0), 10);
        assert_eq!(art.lines().count(), 1);
    }
}
