//! Plain-text trace format (write + parse).
//!
//! "The trace data can also be stored in a plain text file for further
//! processing" — §V-A. The format is line-oriented:
//!
//! ```text
//! # supersim-trace v1 workers=4
//! 0 dgemm 17 0.001250 0.003750
//! ```
//!
//! i.e. `worker kernel task_id start end`, with `#`-comments ignored.

use crate::{Trace, TraceEvent};
use std::fmt::Write as _;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace to the text format.
pub fn write(trace: &Trace) -> String {
    let mut s = String::with_capacity(64 + trace.len() * 48);
    let _ = writeln!(s, "# supersim-trace v1 workers={}", trace.workers);
    for e in trace.spans() {
        let _ = writeln!(
            s,
            "{} {} {} {:.9} {:.9}",
            e.worker, e.kernel, e.task_id, e.start, e.end
        );
    }
    s
}

/// Parse the text format back into a trace (not normalized).
pub fn parse(input: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(0);
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Header comment may carry the worker count.
            if let Some(pos) = rest.find("workers=") {
                let val = rest[pos + "workers=".len()..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("");
                trace.workers = val.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("bad workers count {val:?}"),
                })?;
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(ParseError {
                line: lineno,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let worker: usize = fields[0].parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("bad worker index {:?}", fields[0]),
        })?;
        let task_id: u64 = fields[2].parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("bad task id {:?}", fields[2]),
        })?;
        let start: f64 = fields[3].parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("bad start time {:?}", fields[3]),
        })?;
        let end: f64 = fields[4].parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("bad end time {:?}", fields[4]),
        })?;
        if end < start {
            return Err(ParseError {
                line: lineno,
                message: "end < start".to_string(),
            });
        }
        trace.push(TraceEvent {
            worker,
            kernel: fields[1].to_string(),
            task_id,
            start,
            end,
        });
    }
    if let Some(max_w) = trace.spans().iter().map(|e| e.worker).max() {
        trace.workers = trace.workers.max(max_w + 1);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::new(3);
        t.push(TraceEvent {
            worker: 0,
            kernel: "dgemm".into(),
            task_id: 7,
            start: 0.25,
            end: 1.5,
        });
        t.push(TraceEvent {
            worker: 2,
            kernel: "dpotrf".into(),
            task_id: 8,
            start: 1.5,
            end: 2.0,
        });
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = trace();
        let text = write(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back.workers, 3);
        assert_eq!(back.len(), 2);
        assert_eq!(back.spans()[0].kernel, "dgemm");
        assert_eq!(back.spans()[0].task_id, 7);
        assert!((back.spans()[0].start - 0.25).abs() < 1e-9);
        assert!((back.spans()[1].end - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# hello\n\n0 k 0 0.0 1.0\n# bye\n";
        let t = parse(text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn parse_infers_workers_without_header() {
        let t = parse("5 k 0 0.0 1.0\n").unwrap();
        assert_eq!(t.workers, 6);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("0 k 0 0.0\n").is_err()); // 4 fields
        assert!(parse("x k 0 0.0 1.0\n").is_err()); // bad worker
        assert!(parse("0 k y 0.0 1.0\n").is_err()); // bad id
        assert!(parse("0 k 0 z 1.0\n").is_err()); // bad start
        assert!(parse("0 k 0 1.0 0.5\n").is_err()); // end < start
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = parse("0 k 0 0.0 1.0\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = parse("").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.workers, 0);
    }
}
