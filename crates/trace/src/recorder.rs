//! Thread-safe trace recording.
//!
//! In a real run every worker thread logs `(worker, kernel, start, end)` in
//! wall-clock seconds; in a simulated run the sim-kernel protocol logs the
//! same tuple in virtual time. Both go through [`TraceRecorder`].
//!
//! The recorder is **sharded**: events land in one of `SHARDS` per-shard
//! buffers selected by `worker % SHARDS`, so concurrent workers recording
//! on different shards never contend on a common lock. Each event is
//! stamped with a globally unique sequence number from a single atomic
//! counter; [`TraceRecorder::snapshot`] and [`TraceRecorder::finish`] merge
//! the shards by `(start, seq)`, which makes the merged order deterministic
//! for a given set of recorded events regardless of shard interleaving.

use crate::{Trace, TraceEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent event buffers. Workers map onto shards by
/// `worker % SHARDS`; 32 shards keep lock collisions rare for any
/// realistic worker count while bounding per-recorder memory.
const SHARDS: usize = 32;

/// One shard: a locked event buffer, padded to its own cache line so
/// neighbouring shard locks do not false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Shard {
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    /// Global event sequence stamp: the deterministic merge tie-breaker.
    seq: AtomicU64,
}

/// A shareable, thread-safe accumulator of trace events.
///
/// Cloning shares the underlying buffers ([`Arc`] internally), so every
/// worker thread can own a handle.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            inner: Arc::new(Inner {
                shards: (0..SHARDS).map(|_| Shard::default()).collect(),
                seq: AtomicU64::new(0),
            }),
        }
    }
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&self, worker: usize, kernel: &str, task_id: u64, start: f64, end: f64) {
        self.record_event(TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id,
            start,
            end,
        });
    }

    /// Record a prebuilt event.
    pub fn record_event(&self, event: TraceEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.inner.shards[event.worker % SHARDS];
        shard.events.lock().push((seq, event));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.events.lock().len())
            .sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.events.lock().is_empty())
    }

    /// Drop all recorded events. The sequence stamp keeps counting up —
    /// only relative order within one merge matters.
    pub fn clear(&self) {
        for s in &self.inner.shards {
            s.events.lock().clear();
        }
    }

    /// Merge every shard into one deterministically ordered event list:
    /// ascending `(start, seq)`, with `total_cmp` on the timestamp so the
    /// order is total even for exotic floats.
    fn merged(&self, take: bool) -> Vec<TraceEvent> {
        let mut stamped: Vec<(u64, TraceEvent)> = Vec::new();
        for s in &self.inner.shards {
            let mut guard = s.events.lock();
            if take {
                stamped.append(&mut guard);
            } else {
                stamped.extend(guard.iter().cloned());
            }
        }
        stamped.sort_by(|a, b| a.1.start.total_cmp(&b.1.start).then(a.0.cmp(&b.0)));
        stamped.into_iter().map(|(_, e)| e).collect()
    }

    /// The number of shards events are distributed over.
    pub fn shard_count(&self) -> usize {
        SHARDS
    }

    /// Events currently buffered in each shard (index = shard). A heavily
    /// skewed distribution means workers are aliasing onto few shards and
    /// contending on their locks.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.events.lock().len())
            .collect()
    }

    /// Total events ever recorded through this recorder, including ones
    /// since consumed by [`TraceRecorder::finish`] or dropped by
    /// [`TraceRecorder::clear`] (read from the global sequence stamp).
    pub fn total_recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Take a normalized snapshot of the trace with `workers` lanes
    /// (grown if events reference higher worker indices). The recorder
    /// keeps its contents.
    pub fn snapshot(&self, workers: usize) -> Trace {
        let mut t = Trace {
            workers,
            events: self.merged(false),
        };
        t.normalize();
        t
    }

    /// Consume the recorded events into a normalized [`Trace`], leaving the
    /// recorder empty.
    pub fn finish(&self, workers: usize) -> Trace {
        let mut t = Trace {
            workers,
            events: self.merged(true),
        };
        t.normalize();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn record_and_finish() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.record(1, "b", 1, 0.5, 2.0);
        assert_eq!(r.len(), 2);
        let t = r.finish(2);
        assert_eq!(t.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_keeps_contents() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        let t = r.snapshot(1);
        assert_eq!(t.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn finish_normalizes_time_origin() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 100.0, 101.0);
        r.record(0, "b", 1, 101.0, 103.0);
        let t = r.finish(1);
        assert_eq!(t.events[0].start, 0.0);
        assert!((t.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grows_worker_count_from_events() {
        let r = TraceRecorder::new();
        r.record(7, "a", 0, 0.0, 1.0);
        let t = r.finish(2);
        assert_eq!(t.workers, 8);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = TraceRecorder::new();
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        r.record(w, "k", (w * 100 + i) as u64, i as f64, i as f64 + 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = r.finish(8);
        assert_eq!(t.len(), 800);
        // Every task id exactly once.
        let mut ids: Vec<u64> = t.events.iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn clear_empties() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn shards_beyond_worker_count_still_merge() {
        // Workers far above SHARDS wrap onto existing shards without loss.
        let r = TraceRecorder::new();
        for w in 0..(SHARDS * 3) {
            r.record(w, "k", w as u64, w as f64, w as f64 + 0.5);
        }
        let t = r.finish(1);
        assert_eq!(t.len(), SHARDS * 3);
        assert_eq!(t.workers, SHARDS * 3);
    }

    #[test]
    fn merge_order_is_deterministic_on_timestamp_ties() {
        // Same timestamps recorded from one thread across different
        // shards: the (start, seq) merge must reproduce recording order
        // before normalization re-sorts by lane.
        let r = TraceRecorder::new();
        for i in 0..10u64 {
            r.record((i % 4) as usize, "k", i, 1.0, 2.0);
        }
        let merged = r.merged(false);
        let ids: Vec<u64> = merged.iter().map(|e| e.task_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        // And two identical recorders produce identical snapshots.
        let r2 = TraceRecorder::new();
        for i in 0..10u64 {
            r2.record((i % 4) as usize, "k", i, 1.0, 2.0);
        }
        assert_eq!(r.snapshot(4), r2.snapshot(4));
    }
}
