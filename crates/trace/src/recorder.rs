//! Thread-safe trace recording.
//!
//! In a real run every worker thread logs `(worker, kernel, start, end)` in
//! wall-clock seconds; in a simulated run the sim-kernel protocol logs the
//! same tuple in virtual time. Both go through [`TraceRecorder`].
//!
//! The recorder is **sharded**: events land in one of `SHARDS` per-shard
//! buffers selected by `worker % SHARDS`, so concurrent workers recording
//! on different shards never contend on a common lock. Each event is
//! stamped with a globally unique sequence number from a single atomic
//! counter; [`TraceRecorder::snapshot`] and [`TraceRecorder::finish`] merge
//! the shards by `(start, seq)`, which makes the merged order deterministic
//! for a given set of recorded events regardless of shard interleaving.
//!
//! # Streaming (bounded-memory) mode
//!
//! [`TraceRecorder::attach_sink`] switches the recorder into streaming
//! mode: whenever an engine reports virtual-clock progress via
//! [`TraceRecorder::observe_clock`], every flush epoch the clock has
//! advanced strictly past is drained from the shards — spans with
//! `end ≤ k·ε` for epoch `k` — sorted by the same `(start, seq)` order
//! the buffered merge uses, and pushed to the [`TraceSink`]. Resident
//! memory is then bounded by the spans of one epoch window instead of
//! the whole run.
//!
//! This is safe because of how the engines record: spans are logged with
//! their *final* virtual times before the task retires, and both engines
//! retire tasks in nondecreasing virtual-time order. Once the clock has
//! advanced past an epoch bound, every span ending at or before that
//! bound is already in the shards and can never be joined by another —
//! any span recorded later starts (and therefore ends) past the bound.
//! Flushing is therefore both safe and complete, and epoch batches are a
//! pure function of the recorded span set, not of which thread happened
//! to trip the boundary.
//!
//! ## Accounting under partial drains
//!
//! In streaming mode the shards hold only the *resident* (not yet
//! drained) tail of the trace, which changes what the inspection
//! methods report:
//!
//! * [`TraceRecorder::len`] / [`TraceRecorder::shard_occupancy`] /
//!   [`TraceRecorder::is_empty`] — resident spans only;
//! * [`TraceRecorder::drained`] — spans already pushed to the sink;
//! * [`TraceRecorder::total_recorded`] — lifetime count (resident +
//!   drained + anything dropped by [`TraceRecorder::clear`]);
//! * [`TraceRecorder::snapshot`] — a normalized trace of the resident
//!   window only (a *partial* trace mid-stream);
//! * [`TraceRecorder::clear`] — drops resident spans; they never reach
//!   the sink and are not counted as drained. The sink stays attached.
//! * [`TraceRecorder::finish`] — flushes every remaining span as one
//!   final epoch, closes the sink, detaches it, and returns the
//!   (therefore empty) resident trace.

use crate::sink::TraceSink;
use crate::{Trace, TraceEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent event buffers. Workers map onto shards by
/// `worker % SHARDS`; 32 shards keep lock collisions rare for any
/// realistic worker count while bounding per-recorder memory.
const SHARDS: usize = 32;

/// One shard: a locked event buffer, padded to its own cache line so
/// neighbouring shard locks do not false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Shard {
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

/// Streaming-mode state behind `Inner::stream`.
struct StreamState {
    sink: Box<dyn TraceSink>,
    /// Flush epoch length `ε` in virtual seconds.
    epoch: f64,
    /// Index `k` of the next epoch to flush; its upper bound is `k·ε`
    /// (computed by multiplication, not accumulation, so long runs do
    /// not drift).
    next_epoch: u64,
    /// First sink error, if any; later flushes are still attempted.
    error: Option<String>,
}

impl std::fmt::Debug for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamState")
            .field("epoch", &self.epoch)
            .field("next_epoch", &self.next_epoch)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    /// Global event sequence stamp: the deterministic merge tie-breaker.
    seq: AtomicU64,
    /// Spans drained to the attached sink so far (lifetime, survives
    /// sink detach).
    drained: AtomicU64,
    /// Bits of the next pending epoch bound, `f64::INFINITY` when no
    /// sink is attached — the lock-free fast path for
    /// [`TraceRecorder::observe_clock`].
    next_bound: AtomicU64,
    stream: Mutex<Option<StreamState>>,
}

/// A shareable, thread-safe accumulator of trace events.
///
/// Cloning shares the underlying buffers ([`Arc`] internally), so every
/// worker thread can own a handle.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            inner: Arc::new(Inner {
                shards: (0..SHARDS).map(|_| Shard::default()).collect(),
                seq: AtomicU64::new(0),
                drained: AtomicU64::new(0),
                next_bound: AtomicU64::new(f64::INFINITY.to_bits()),
                stream: Mutex::new(None),
            }),
        }
    }
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&self, worker: usize, kernel: &str, task_id: u64, start: f64, end: f64) {
        self.record_event(TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id,
            start,
            end,
        });
    }

    /// Record a prebuilt event.
    pub fn record_event(&self, event: TraceEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.inner.shards[event.worker % SHARDS];
        shard.events.lock().push((seq, event));
    }

    /// Number of events currently resident (recorded and, in streaming
    /// mode, not yet drained).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.events.lock().len())
            .sum()
    }

    /// Whether no events are resident.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.events.lock().is_empty())
    }

    /// Drop all resident events. The sequence stamp keeps counting up —
    /// only relative order within one merge matters. In streaming mode
    /// the dropped events never reach the sink and are **not** counted
    /// as drained; the sink itself stays attached.
    pub fn clear(&self) {
        for s in &self.inner.shards {
            s.events.lock().clear();
        }
    }

    /// Merge every shard into one deterministically ordered event list:
    /// ascending `(start, seq)`, with `total_cmp` on the timestamp so the
    /// order is total even for exotic floats.
    fn merged(&self, take: bool) -> Vec<TraceEvent> {
        let mut stamped: Vec<(u64, TraceEvent)> = Vec::new();
        for s in &self.inner.shards {
            let mut guard = s.events.lock();
            if take {
                stamped.append(&mut guard);
            } else {
                stamped.extend(guard.iter().cloned());
            }
        }
        stamped.sort_by(|a, b| a.1.start.total_cmp(&b.1.start).then(a.0.cmp(&b.0)));
        stamped.into_iter().map(|(_, e)| e).collect()
    }

    /// Remove every resident event with `end <= bound` and return them
    /// in `(start, seq)` order — one flush-epoch batch.
    fn drain_upto(&self, bound: f64) -> Vec<TraceEvent> {
        let mut stamped: Vec<(u64, TraceEvent)> = Vec::new();
        for s in &self.inner.shards {
            let mut guard = s.events.lock();
            let mut i = 0;
            while i < guard.len() {
                if guard[i].1.end <= bound {
                    stamped.push(guard.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        stamped.sort_by(|a, b| a.1.start.total_cmp(&b.1.start).then(a.0.cmp(&b.0)));
        stamped.into_iter().map(|(_, e)| e).collect()
    }

    /// The number of shards events are distributed over.
    pub fn shard_count(&self) -> usize {
        SHARDS
    }

    /// Events currently buffered in each shard (index = shard). A heavily
    /// skewed distribution means workers are aliasing onto few shards and
    /// contending on their locks. In streaming mode this covers resident
    /// events only.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.events.lock().len())
            .collect()
    }

    /// Total events ever recorded through this recorder, including ones
    /// since drained to a sink, consumed by [`TraceRecorder::finish`] or
    /// dropped by [`TraceRecorder::clear`] (read from the global
    /// sequence stamp).
    pub fn total_recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Spans pushed to an attached sink so far, across the recorder's
    /// lifetime (the counter survives sink detach at
    /// [`TraceRecorder::finish`]).
    pub fn drained(&self) -> u64 {
        self.inner.drained.load(Ordering::Relaxed)
    }

    /// Whether a sink is currently attached.
    pub fn is_streaming(&self) -> bool {
        self.inner.stream.lock().is_some()
    }

    /// First error the attached sink reported, if any.
    pub fn sink_error(&self) -> Option<String> {
        self.inner
            .stream
            .lock()
            .as_ref()
            .and_then(|s| s.error.clone())
    }

    /// Switch into bounded-memory streaming mode: from now on, every
    /// [`TraceRecorder::observe_clock`] call drains the flush epochs the
    /// virtual clock has passed into `sink` (see the module docs for the
    /// epoch rule). `epoch` is the flush-epoch length in virtual
    /// seconds.
    ///
    /// # Panics
    ///
    /// If `epoch` is not positive and finite, or a sink is already
    /// attached.
    pub fn attach_sink(&self, sink: Box<dyn TraceSink>, epoch: f64) {
        assert!(
            epoch.is_finite() && epoch > 0.0,
            "flush epoch must be positive and finite, got {epoch}"
        );
        let mut guard = self.inner.stream.lock();
        assert!(guard.is_none(), "a trace sink is already attached");
        *guard = Some(StreamState {
            sink,
            epoch,
            next_epoch: 1,
            error: None,
        });
        self.inner
            .next_bound
            .store(epoch.to_bits(), Ordering::Release);
    }

    /// Report virtual-clock progress. Engines call this after every
    /// retirement; when no sink is attached (or the clock has not passed
    /// the next epoch bound yet) it is one relaxed atomic load.
    pub fn observe_clock(&self, now: f64) {
        let bound = f64::from_bits(self.inner.next_bound.load(Ordering::Relaxed));
        if now <= bound {
            return;
        }
        let mut guard = self.inner.stream.lock();
        let Some(st) = guard.as_mut() else { return };
        // Flush strictly elapsed epochs one by one: each batch is a pure
        // function of the epoch bounds and the spans' end times, so the
        // stream content is identical no matter how many boundaries one
        // observe_clock call happens to cross.
        loop {
            let bound = st.epoch * st.next_epoch as f64;
            if now <= bound {
                self.inner
                    .next_bound
                    .store(bound.to_bits(), Ordering::Relaxed);
                break;
            }
            let batch = self.drain_upto(bound);
            st.next_epoch += 1;
            if !batch.is_empty() {
                self.inner
                    .drained
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                if let Err(e) = st.sink.flush_epoch(&batch) {
                    st.error.get_or_insert_with(|| e.to_string());
                }
            }
        }
    }

    /// Take a normalized snapshot of the trace with `workers` lanes
    /// (grown if events reference higher worker indices). The recorder
    /// keeps its contents. In streaming mode this covers the resident
    /// window only — spans already drained to the sink are gone.
    pub fn snapshot(&self, workers: usize) -> Trace {
        let mut t = Trace::from_parts(workers, self.merged(false));
        t.normalize();
        t
    }

    /// Consume the recorded events into a normalized [`Trace`], leaving the
    /// recorder empty.
    ///
    /// In streaming mode, every span still resident is first pushed to
    /// the sink as one final (partial) epoch, the sink is closed and
    /// detached, and the returned trace is empty — the spans live
    /// wherever the sink put them. Callers wanting both behaviours at
    /// once can stream into a [`crate::sink::CollectSink`].
    pub fn finish(&self, workers: usize) -> Trace {
        self.finish_stream();
        let mut t = Trace::from_parts(workers, self.merged(true));
        t.normalize();
        t
    }

    /// Flush all resident spans to the attached sink (if any), close it
    /// and detach it. No-op when not streaming.
    pub fn finish_stream(&self) {
        let mut guard = self.inner.stream.lock();
        let Some(mut st) = guard.take() else { return };
        let batch = self.drain_upto(f64::INFINITY);
        if !batch.is_empty() {
            self.inner
                .drained
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            if let Err(e) = st.sink.flush_epoch(&batch) {
                st.error.get_or_insert_with(|| e.to_string());
            }
        }
        if let Err(e) = st.sink.close() {
            st.error.get_or_insert_with(|| e.to_string());
        }
        self.inner
            .next_bound
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use std::thread;

    #[test]
    fn record_and_finish() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.record(1, "b", 1, 0.5, 2.0);
        assert_eq!(r.len(), 2);
        let t = r.finish(2);
        assert_eq!(t.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_keeps_contents() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        let t = r.snapshot(1);
        assert_eq!(t.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn finish_normalizes_time_origin() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 100.0, 101.0);
        r.record(0, "b", 1, 101.0, 103.0);
        let t = r.finish(1);
        assert_eq!(t.spans()[0].start, 0.0);
        assert!((t.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grows_worker_count_from_events() {
        let r = TraceRecorder::new();
        r.record(7, "a", 0, 0.0, 1.0);
        let t = r.finish(2);
        assert_eq!(t.workers, 8);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = TraceRecorder::new();
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        r.record(w, "k", (w * 100 + i) as u64, i as f64, i as f64 + 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = r.finish(8);
        assert_eq!(t.len(), 800);
        // Every task id exactly once.
        let mut ids: Vec<u64> = t.spans().iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn clear_empties() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn shards_beyond_worker_count_still_merge() {
        // Workers far above SHARDS wrap onto existing shards without loss.
        let r = TraceRecorder::new();
        for w in 0..(SHARDS * 3) {
            r.record(w, "k", w as u64, w as f64, w as f64 + 0.5);
        }
        let t = r.finish(1);
        assert_eq!(t.len(), SHARDS * 3);
        assert_eq!(t.workers, SHARDS * 3);
    }

    #[test]
    fn merge_order_is_deterministic_on_timestamp_ties() {
        // Same timestamps recorded from one thread across different
        // shards: the (start, seq) merge must reproduce recording order
        // before normalization re-sorts by lane.
        let r = TraceRecorder::new();
        for i in 0..10u64 {
            r.record((i % 4) as usize, "k", i, 1.0, 2.0);
        }
        let merged = r.merged(false);
        let ids: Vec<u64> = merged.iter().map(|e| e.task_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        // And two identical recorders produce identical snapshots.
        let r2 = TraceRecorder::new();
        for i in 0..10u64 {
            r2.record((i % 4) as usize, "k", i, 1.0, 2.0);
        }
        assert_eq!(r.snapshot(4), r2.snapshot(4));
    }

    #[test]
    fn observe_clock_flushes_elapsed_epochs_only() {
        let r = TraceRecorder::new();
        let sink = CollectSink::new();
        let handle = sink.handle();
        r.attach_sink(Box::new(sink), 1.0);
        r.record(0, "a", 0, 0.0, 0.5);
        r.record(1, "b", 1, 0.4, 1.0); // ends exactly on the epoch bound
        r.record(0, "c", 2, 0.8, 1.7); // crosses into epoch 2
        r.observe_clock(0.9); // bound 1.0 not passed yet
        assert_eq!(handle.len(), 0);
        r.observe_clock(1.0); // still not *strictly* past
        assert_eq!(handle.len(), 0);
        r.observe_clock(1.2);
        assert_eq!(handle.len(), 2, "spans ending ≤ 1.0 flushed");
        assert_eq!(r.len(), 1, "the crossing span stays resident");
        assert_eq!(r.drained(), 2);
        assert_eq!(r.total_recorded(), 3);
    }

    #[test]
    fn streamed_equals_buffered_order() {
        // Identical recordings, one streamed in several epochs, one
        // buffered: the concatenated epoch batches must equal the
        // buffered merge exactly.
        let record_all = |r: &TraceRecorder| {
            for i in 0..40u64 {
                let start = (i % 7) as f64 * 0.31;
                r.record((i % 5) as usize, "k", i, start, start + 0.9);
            }
        };
        let streamed = TraceRecorder::new();
        let sink = CollectSink::new();
        let handle = sink.handle();
        streamed.attach_sink(Box::new(sink), 0.4);
        record_all(&streamed);
        for step in 0..40 {
            streamed.observe_clock(step as f64 * 0.1);
        }
        let st = streamed.finish(5);
        assert!(st.is_empty(), "streaming finish leaves no resident trace");
        let buffered = TraceRecorder::new();
        record_all(&buffered);
        assert_eq!(handle.into_trace(5), buffered.finish(5));
    }

    #[test]
    fn finish_flushes_remainder_and_detaches() {
        let r = TraceRecorder::new();
        let sink = CollectSink::new();
        let handle = sink.handle();
        r.attach_sink(Box::new(sink), 10.0);
        r.record(0, "a", 0, 0.0, 1.0);
        assert!(r.is_streaming());
        let t = r.finish(1);
        assert!(t.is_empty());
        assert_eq!(handle.len(), 1);
        assert!(!r.is_streaming());
        assert_eq!(r.drained(), 1, "drained counter survives detach");
        // After detach the recorder buffers again.
        r.record(0, "b", 1, 1.0, 2.0);
        assert_eq!(r.finish(1).len(), 1);
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn clear_drops_resident_without_counting_drained() {
        let r = TraceRecorder::new();
        let sink = CollectSink::new();
        let handle = sink.handle();
        r.attach_sink(Box::new(sink), 1.0);
        r.record(0, "a", 0, 0.0, 0.5);
        r.observe_clock(1.5); // a drained
        r.record(0, "b", 1, 1.2, 1.8);
        r.clear(); // b dropped, never drained
        assert_eq!(r.len(), 0);
        assert_eq!(r.drained(), 1);
        assert_eq!(r.total_recorded(), 2);
        assert!(r.is_streaming(), "clear keeps the sink attached");
        r.finish(1);
        assert_eq!(handle.len(), 1, "only a ever reached the sink");
    }

    #[test]
    fn snapshot_mid_stream_is_resident_window_only() {
        let r = TraceRecorder::new();
        r.attach_sink(Box::new(CollectSink::new()), 1.0);
        r.record(0, "a", 0, 0.0, 0.5);
        r.record(0, "b", 1, 1.1, 1.9);
        r.observe_clock(2.5);
        let snap = r.snapshot(1);
        assert_eq!(snap.len(), 0, "everything ≤ 2.0 was drained");
        r.record(0, "c", 2, 2.6, 3.4);
        assert_eq!(r.snapshot(1).len(), 1);
        assert_eq!(r.shard_occupancy().iter().sum::<usize>(), 1);
    }

    #[test]
    #[should_panic(expected = "flush epoch must be positive")]
    fn attach_sink_rejects_bad_epoch() {
        TraceRecorder::new().attach_sink(Box::new(CollectSink::new()), 0.0);
    }

    #[test]
    fn concurrent_streaming_loses_nothing() {
        // Recording races observe_clock from many threads; the union of
        // sink content and resident events must still be exact.
        let r = TraceRecorder::new();
        let sink = CollectSink::new();
        let handle = sink.handle();
        r.attach_sink(Box::new(sink), 0.5);
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..200 {
                        let start = i as f64 * 0.01;
                        r.record(w, "k", (w * 200 + i) as u64, start, start + 0.02);
                        r.observe_clock(start + 0.02);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        r.finish(4);
        let mut ids: Vec<u64> = handle.take().iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }
}
