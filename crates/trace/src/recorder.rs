//! Thread-safe trace recording.
//!
//! In a real run every worker thread logs `(worker, kernel, start, end)` in
//! wall-clock seconds; in a simulated run the sim-kernel protocol logs the
//! same tuple in virtual time. Both go through [`TraceRecorder`].

use crate::{Trace, TraceEvent};
use parking_lot::Mutex;
use std::sync::Arc;

/// A shareable, thread-safe accumulator of trace events.
///
/// Cloning shares the underlying buffer ([`Arc`] internally), so every
/// worker thread can own a handle.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&self, worker: usize, kernel: &str, task_id: u64, start: f64, end: f64) {
        self.inner.lock().push(TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id,
            start,
            end,
        });
    }

    /// Record a prebuilt event.
    pub fn record_event(&self, event: TraceEvent) {
        self.inner.lock().push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Take a normalized snapshot of the trace with `workers` lanes
    /// (grown if events reference higher worker indices). The recorder
    /// keeps its contents.
    pub fn snapshot(&self, workers: usize) -> Trace {
        let mut t = Trace { workers, events: self.inner.lock().clone() };
        t.normalize();
        t
    }

    /// Consume the recorded events into a normalized [`Trace`], leaving the
    /// recorder empty.
    pub fn finish(&self, workers: usize) -> Trace {
        let events = std::mem::take(&mut *self.inner.lock());
        let mut t = Trace { workers, events };
        t.normalize();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn record_and_finish() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.record(1, "b", 1, 0.5, 2.0);
        assert_eq!(r.len(), 2);
        let t = r.finish(2);
        assert_eq!(t.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_keeps_contents() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        let t = r.snapshot(1);
        assert_eq!(t.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn finish_normalizes_time_origin() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 100.0, 101.0);
        r.record(0, "b", 1, 101.0, 103.0);
        let t = r.finish(1);
        assert_eq!(t.events[0].start, 0.0);
        assert!((t.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grows_worker_count_from_events() {
        let r = TraceRecorder::new();
        r.record(7, "a", 0, 0.0, 1.0);
        let t = r.finish(2);
        assert_eq!(t.workers, 8);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = TraceRecorder::new();
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        r.record(w, "k", (w * 100 + i) as u64, i as f64, i as f64 + 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = r.finish(8);
        assert_eq!(t.len(), 800);
        // Every task id exactly once.
        let mut ids: Vec<u64> = t.events.iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn clear_empties() {
        let r = TraceRecorder::new();
        r.record(0, "a", 0, 0.0, 1.0);
        r.clear();
        assert!(r.is_empty());
    }
}
