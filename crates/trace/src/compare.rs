//! Trace similarity metrics.
//!
//! The paper validates the simulator by comparing the *simulated* trace to a
//! *real* trace of the same algorithm (Figs. 6–7): total execution time must
//! match within a few percent, and the trace must retain "the essential
//! features" — same task population, similar shape. These metrics make that
//! comparison quantitative:
//!
//! * makespan relative error,
//! * per-kernel-class population equality,
//! * placement agreement (fraction of tasks scheduled onto the same worker),
//! * start-time agreement (Pearson correlation and mean absolute shift,
//!   after normalizing both traces to a common origin).

use crate::{Trace, TraceStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The result of comparing a candidate (e.g. simulated) trace against a
/// reference (e.g. real) trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceComparison {
    /// Reference makespan.
    pub makespan_ref: f64,
    /// Candidate makespan.
    pub makespan_cand: f64,
    /// `(cand - ref) / ref`; positive means the candidate is slower.
    pub makespan_rel_error: f64,
    /// True if both traces contain exactly the same multiset of
    /// (kernel-class, count).
    pub same_kernel_population: bool,
    /// Number of task ids present in both traces.
    pub matched_tasks: usize,
    /// Fraction of matched tasks placed on the same worker in both traces.
    pub placement_agreement: f64,
    /// Pearson correlation of matched task start times.
    pub start_time_correlation: f64,
    /// Mean absolute difference of matched start times, as a fraction of
    /// the reference makespan.
    pub mean_start_shift: f64,
}

impl TraceComparison {
    /// Compare `candidate` against `reference`.
    ///
    /// Both traces are normalized (time origin 0) internally; the inputs
    /// are not modified.
    pub fn compare(reference: &Trace, candidate: &Trace) -> Self {
        let mut r = reference.clone();
        let mut c = candidate.clone();
        r.normalize();
        c.normalize();

        let makespan_ref = r.makespan();
        let makespan_cand = c.makespan();
        let makespan_rel_error = if makespan_ref > 0.0 {
            (makespan_cand - makespan_ref) / makespan_ref
        } else if makespan_cand == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };

        let sr = TraceStats::of(&r);
        let sc = TraceStats::of(&c);
        let same_kernel_population = sr.kernels.len() == sc.kernels.len()
            && sr
                .kernels
                .iter()
                .all(|(k, v)| sc.kernels.get(k).is_some_and(|w| w.count == v.count));

        // Match tasks by id.
        let by_id: HashMap<u64, (usize, f64)> = r
            .spans()
            .iter()
            .map(|e| (e.task_id, (e.worker, e.start)))
            .collect();
        let mut matched = 0usize;
        let mut same_worker = 0usize;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut shift_sum = 0.0;
        for e in c.spans() {
            if let Some(&(w, s)) = by_id.get(&e.task_id) {
                matched += 1;
                if w == e.worker {
                    same_worker += 1;
                }
                xs.push(s);
                ys.push(e.start);
                shift_sum += (e.start - s).abs();
            }
        }
        let placement_agreement = if matched > 0 {
            same_worker as f64 / matched as f64
        } else {
            0.0
        };
        let start_time_correlation = pearson(&xs, &ys);
        let mean_start_shift = if matched > 0 && makespan_ref > 0.0 {
            shift_sum / matched as f64 / makespan_ref
        } else {
            0.0
        };

        TraceComparison {
            makespan_ref,
            makespan_cand,
            makespan_rel_error,
            same_kernel_population,
            matched_tasks: matched,
            placement_agreement,
            start_time_correlation,
            mean_start_shift,
        }
    }

    /// Absolute value of the makespan relative error.
    pub fn makespan_abs_error(&self) -> f64 {
        self.makespan_rel_error.abs()
    }

    /// Render a one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "makespan {:.6}s vs {:.6}s (err {:+.2}%), pop_match={}, matched={}, placement={:.1}%, start_corr={:.4}, start_shift={:.2}%",
            self.makespan_ref,
            self.makespan_cand,
            self.makespan_rel_error * 100.0,
            self.same_kernel_population,
            self.matched_tasks,
            self.placement_agreement * 100.0,
            self.start_time_correlation,
            self.mean_start_shift * 100.0,
        )
    }
}

/// Pearson correlation; 0 for fewer than 2 points or degenerate variance.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.into(),
            task_id: id,
            start,
            end,
        }
    }

    fn base_trace() -> Trace {
        let mut t = Trace::new(2);
        t.push(ev(0, "gemm", 0, 0.0, 1.0));
        t.push(ev(1, "trsm", 1, 0.0, 0.5));
        t.push(ev(1, "gemm", 2, 0.5, 2.0));
        t
    }

    #[test]
    fn identical_traces_compare_perfectly() {
        let t = base_trace();
        let c = TraceComparison::compare(&t, &t);
        assert_eq!(c.makespan_rel_error, 0.0);
        assert!(c.same_kernel_population);
        assert_eq!(c.matched_tasks, 3);
        assert_eq!(c.placement_agreement, 1.0);
        assert!((c.start_time_correlation - 1.0).abs() < 1e-12);
        assert_eq!(c.mean_start_shift, 0.0);
    }

    #[test]
    fn makespan_error_signed() {
        let r = base_trace();
        let mut c = base_trace();
        for e in c.spans_mut() {
            e.start *= 1.1;
            e.end *= 1.1;
        }
        let cmp = TraceComparison::compare(&r, &c);
        assert!((cmp.makespan_rel_error - 0.1).abs() < 1e-9);
        assert!((cmp.makespan_abs_error() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn population_mismatch_detected() {
        let r = base_trace();
        let mut c = base_trace();
        c.spans_mut()[1].kernel = "syrk".into();
        let cmp = TraceComparison::compare(&r, &c);
        assert!(!cmp.same_kernel_population);
    }

    #[test]
    fn placement_agreement_counts_same_worker() {
        let r = base_trace();
        let mut c = base_trace();
        c.spans_mut()[0].worker = 1; // move one of three tasks
        let cmp = TraceComparison::compare(&r, &c);
        assert!((cmp.placement_agreement - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unmatched_ids_not_counted() {
        let r = base_trace();
        let mut c = base_trace();
        c.spans_mut()[2].task_id = 99;
        let cmp = TraceComparison::compare(&r, &c);
        assert_eq!(cmp.matched_tasks, 2);
    }

    #[test]
    fn empty_traces_are_equal() {
        let cmp = TraceComparison::compare(&Trace::new(1), &Trace::new(1));
        assert_eq!(cmp.makespan_rel_error, 0.0);
        assert!(cmp.same_kernel_population);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let t = base_trace();
        let s = TraceComparison::compare(&t, &t).summary();
        assert!(s.contains("makespan"));
        assert!(s.contains("placement"));
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0, 0.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }
}
