//! Trace statistics: makespan, utilization, idle time, per-kernel summaries.

use crate::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of a single kernel class within a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of occurrences.
    pub count: usize,
    /// Sum of durations.
    pub total_time: f64,
    /// Mean duration.
    pub mean_time: f64,
    /// Minimum duration.
    pub min_time: f64,
    /// Maximum duration.
    pub max_time: f64,
}

/// Aggregate statistics for a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of worker lanes.
    pub workers: usize,
    /// Number of events.
    pub events: usize,
    /// Latest end minus earliest start.
    pub makespan: f64,
    /// Sum of all event durations (total busy time).
    pub busy_time: f64,
    /// `busy_time / (workers * makespan)`; 0 for empty traces.
    pub utilization: f64,
    /// Busy time per worker lane.
    pub per_worker_busy: Vec<f64>,
    /// Events executed per worker lane.
    pub per_worker_count: Vec<usize>,
    /// Per-kernel-class summaries, keyed by label (sorted).
    pub kernels: BTreeMap<String, KernelStats>,
}

impl TraceStats {
    /// Compute statistics for a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut per_worker_busy = vec![0.0; trace.workers];
        let mut per_worker_count = vec![0usize; trace.workers];
        let mut kernels: BTreeMap<String, KernelStats> = BTreeMap::new();
        let mut busy = 0.0;
        for e in trace.spans() {
            let d = e.duration();
            busy += d;
            if e.worker < per_worker_busy.len() {
                per_worker_busy[e.worker] += d;
                per_worker_count[e.worker] += 1;
            }
            let k = kernels.entry(e.kernel.clone()).or_insert(KernelStats {
                count: 0,
                total_time: 0.0,
                mean_time: 0.0,
                min_time: f64::INFINITY,
                max_time: f64::NEG_INFINITY,
            });
            k.count += 1;
            k.total_time += d;
            k.min_time = k.min_time.min(d);
            k.max_time = k.max_time.max(d);
        }
        for k in kernels.values_mut() {
            k.mean_time = k.total_time / k.count as f64;
        }
        let makespan = trace.makespan();
        let utilization = if makespan > 0.0 && trace.workers > 0 {
            busy / (trace.workers as f64 * makespan)
        } else {
            0.0
        };
        TraceStats {
            workers: trace.workers,
            events: trace.len(),
            makespan,
            busy_time: busy,
            utilization,
            per_worker_busy,
            per_worker_count,
            kernels,
        }
    }

    /// Total idle time across all lanes: `workers * makespan - busy_time`.
    pub fn idle_time(&self) -> f64 {
        (self.workers as f64 * self.makespan - self.busy_time).max(0.0)
    }

    /// Count of events for one kernel class (0 if absent).
    pub fn kernel_count(&self, label: &str) -> usize {
        self.kernels.get(label).map_or(0, |k| k.count)
    }

    /// Render a compact human-readable report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "workers={} events={} makespan={:.6}s busy={:.6}s util={:.1}%",
            self.workers,
            self.events,
            self.makespan,
            self.busy_time,
            self.utilization * 100.0
        );
        for (label, k) in &self.kernels {
            let _ = writeln!(
                s,
                "  {:<12} n={:<6} total={:.6}s mean={:.6}s min={:.6}s max={:.6}s",
                label, k.count, k.total_time, k.mean_time, k.min_time, k.max_time
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn trace() -> Trace {
        let mut t = Trace::new(2);
        for (w, k, id, s, e) in [
            (0, "gemm", 0, 0.0, 1.0),
            (0, "gemm", 1, 1.0, 3.0),
            (1, "trsm", 2, 0.0, 2.0),
        ] {
            t.push(TraceEvent {
                worker: w,
                kernel: k.to_string(),
                task_id: id,
                start: s,
                end: e,
            });
        }
        t
    }

    #[test]
    fn aggregate_stats() {
        let s = TraceStats::of(&trace());
        assert_eq!(s.events, 3);
        assert!((s.makespan - 3.0).abs() < 1e-12);
        assert!((s.busy_time - 5.0).abs() < 1e-12);
        assert!((s.utilization - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.idle_time() - 1.0).abs() < 1e-12);
        assert_eq!(s.per_worker_count, vec![2, 1]);
        assert!((s.per_worker_busy[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_breakdown() {
        let s = TraceStats::of(&trace());
        assert_eq!(s.kernel_count("gemm"), 2);
        assert_eq!(s.kernel_count("trsm"), 1);
        assert_eq!(s.kernel_count("nope"), 0);
        let g = &s.kernels["gemm"];
        assert!((g.mean_time - 1.5).abs() < 1e-12);
        assert_eq!(g.min_time, 1.0);
        assert_eq!(g.max_time, 2.0);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::of(&Trace::new(4));
        assert_eq!(s.events, 0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.idle_time(), 0.0);
    }

    #[test]
    fn report_contains_key_numbers() {
        let s = TraceStats::of(&trace());
        let r = s.report();
        assert!(r.contains("workers=2"));
        assert!(r.contains("gemm"));
        assert!(r.contains("trsm"));
    }
}
