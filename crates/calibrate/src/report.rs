//! Human-readable calibration reports.

use crate::fitter::Calibration;
use std::fmt::Write as _;

/// Render a calibration as a table: one row per kernel class with the
/// chosen family, parameters via mean/std, warm-up factor, and the AIC
/// ranking of the candidates.
pub fn render(cal: &Calibration) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>6} {:>12} {:>12} {:>7} {:<10} candidates (AIC)",
        "kernel", "samples", "warm", "mean[s]", "std[s]", "wfac", "family"
    );
    for (label, r) in &cal.reports {
        let model = cal.registry.expect(label);
        let std = supersim_dist::Distribution::std_dev(&model.dist);
        let mut cands = String::new();
        for c in &r.candidates {
            let _ = write!(cands, "{}={:.1} ", c.dist.family(), c.aic);
        }
        let _ = writeln!(
            s,
            "{:<10} {:>8} {:>6} {:>12.6} {:>12.6} {:>7.2} {:<10} {}",
            label, r.samples, r.warmups_excluded, r.mean, std, r.warmup_factor, r.family, cands
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitter::{calibrate, FitOptions};
    use supersim_trace::{Trace, TraceEvent};

    #[test]
    fn report_lists_all_kernels() {
        let mut t = Trace::new(1);
        let mut id = 0;
        for kernel in ["dgemm", "dtrsm"] {
            for i in 0..30 {
                let d = 0.01 + (i % 7) as f64 * 0.0005;
                t.push(TraceEvent {
                    worker: 0,
                    kernel: kernel.into(),
                    task_id: id,
                    start: id as f64,
                    end: id as f64 + d,
                });
                id += 1;
            }
        }
        let cal = calibrate(&t, FitOptions::default());
        let report = render(&cal);
        assert!(report.contains("dgemm"));
        assert!(report.contains("dtrsm"));
        assert!(report.contains("kernel"));
        assert!(report.lines().count() >= 3);
    }
}
