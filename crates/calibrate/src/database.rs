//! JSON persistence for calibrations — the "kernel model database" that
//! lets an autotuning loop (the paper's motivating use case, §VI-B)
//! calibrate once and simulate many configurations.

use crate::fitter::Calibration;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use supersim_core::ModelRegistry;

/// A stored calibration plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationDb {
    /// Schema version.
    pub version: u32,
    /// Free-form description (machine, workload, parameters).
    pub description: String,
    /// Matrix order of the calibration run (0 = not applicable).
    pub n: usize,
    /// Tile size of the calibration run.
    pub nb: usize,
    /// Worker count of the calibration run.
    pub workers: usize,
    /// The calibration itself.
    pub calibration: Calibration,
}

impl CalibrationDb {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Wrap a calibration with provenance.
    pub fn new(
        description: impl Into<String>,
        n: usize,
        nb: usize,
        workers: usize,
        calibration: Calibration,
    ) -> Self {
        CalibrationDb {
            version: Self::VERSION,
            description: description.into(),
            n,
            nb,
            workers,
            calibration,
        }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration serialization cannot fail")
    }

    /// Parse from JSON, checking the schema version.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let db: CalibrationDb = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if db.version != Self::VERSION {
            return Err(format!(
                "calibration schema version {} (expected {})",
                db.version,
                Self::VERSION
            ));
        }
        Ok(db)
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&text)
    }

    /// The fitted model registry as a shared read-only database, ready to
    /// back many concurrent sessions (`SimSession::with_shared`) or a
    /// whole sweep (`SweepModels::Shared`): load once, hand the `Arc` to
    /// every cell.
    pub fn shared_models(&self) -> Arc<ModelRegistry> {
        Arc::new(self.calibration.registry.clone())
    }

    /// A stable 64-bit identity for this database's contents: FNV-1a over
    /// the canonical JSON serialization (BTreeMap-backed, so key order is
    /// deterministic). Equal databases hash equal across processes; the
    /// serve layer keys its fitted-model cache on this, so a database
    /// edited on disk is re-fitted rather than served stale.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("calibration serialization cannot fail");
        let mut h = 0xcbf29ce484222325u64;
        for b in json.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitter::{calibrate, FitOptions};
    use supersim_trace::{Trace, TraceEvent};

    fn small_calibration() -> Calibration {
        let mut t = Trace::new(1);
        for i in 0..40u64 {
            let d = 0.01 + (i % 5) as f64 * 0.001;
            t.push(TraceEvent {
                worker: 0,
                kernel: "dgemm".into(),
                task_id: i,
                start: i as f64,
                end: i as f64 + d,
            });
        }
        calibrate(&t, FitOptions::default())
    }

    #[test]
    fn json_round_trip() {
        let db = CalibrationDb::new("test box", 100, 10, 2, small_calibration());
        let json = db.to_json();
        let back = CalibrationDb::from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut db = CalibrationDb::new("x", 0, 0, 0, small_calibration());
        db.version = 99;
        let err = CalibrationDb::from_json(&db.to_json()).unwrap_err();
        assert!(err.contains("version 99"));
    }

    #[test]
    fn file_round_trip() {
        let db = CalibrationDb::new("file test", 64, 8, 4, small_calibration());
        let dir = std::env::temp_dir().join("supersim-test-db");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cal.json");
        db.save(&path).unwrap();
        let back = CalibrationDb::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_models_exposes_the_fitted_registry() {
        let db = CalibrationDb::new("share test", 100, 10, 2, small_calibration());
        let shared = db.shared_models();
        assert_eq!(*shared, db.calibration.registry);
        // Two handles to the same immutable database, not two copies.
        let other = Arc::clone(&shared);
        assert_eq!(Arc::strong_count(&shared), 2);
        drop(other);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let db = CalibrationDb::new("fp test", 100, 10, 2, small_calibration());
        assert_eq!(db.fingerprint(), db.fingerprint(), "must be stable");
        let mut other = db.clone();
        other.description = "edited".into();
        assert_ne!(db.fingerprint(), other.fingerprint());
    }

    #[test]
    fn garbage_json_rejected() {
        assert!(CalibrationDb::from_json("not json").is_err());
        assert!(CalibrationDb::load(Path::new("/nonexistent/x.json")).is_err());
    }
}
