//! Extract per-kernel duration samples from an execution trace.

use std::collections::{BTreeMap, HashSet};
use supersim_trace::Trace;

/// Options controlling sample extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectOptions {
    /// Exclude each worker's first execution of each kernel class (the
    /// paper's MKL-initialization outliers, §V-B1).
    pub exclude_first_per_worker: bool,
    /// Symmetric quantile trim: drop samples below `q` and above `1 - q`
    /// (0 disables). Applied after warm-up exclusion.
    pub trim_quantile: f64,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            exclude_first_per_worker: true,
            trim_quantile: 0.0,
        }
    }
}

/// Samples for one kernel class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelSamples {
    /// Retained duration samples (seconds), in trace order.
    pub durations: Vec<f64>,
    /// Durations of the excluded per-worker first calls.
    pub warmup_durations: Vec<f64>,
    /// Count trimmed as outliers.
    pub trimmed: usize,
}

impl KernelSamples {
    /// Mean of the retained samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.durations.is_empty() {
            0.0
        } else {
            self.durations.iter().sum::<f64>() / self.durations.len() as f64
        }
    }

    /// Estimated warm-up factor: mean first-call duration over mean steady
    /// duration (1.0 when there is no evidence of warm-up).
    pub fn warmup_factor(&self) -> f64 {
        if self.warmup_durations.is_empty() || self.durations.is_empty() {
            return 1.0;
        }
        let w = self.warmup_durations.iter().sum::<f64>() / self.warmup_durations.len() as f64;
        let m = self.mean();
        if m <= 0.0 {
            return 1.0;
        }
        (w / m).max(1.0)
    }
}

/// Collect per-kernel-class samples from a trace.
pub fn collect(trace: &Trace, opts: CollectOptions) -> BTreeMap<String, KernelSamples> {
    let mut out: BTreeMap<String, KernelSamples> = BTreeMap::new();
    let mut seen: HashSet<(usize, &str)> = HashSet::new();

    // Per-worker chronological order decides which call is "first".
    let mut events: Vec<&supersim_trace::TraceEvent> = trace.spans().iter().collect();
    events.sort_by(|a, b| a.start.total_cmp(&b.start));

    for e in events {
        let entry = out.entry(e.kernel.clone()).or_default();
        let is_first = seen.insert((e.worker, e.kernel.as_str()));
        if opts.exclude_first_per_worker && is_first {
            entry.warmup_durations.push(e.duration());
        } else {
            entry.durations.push(e.duration());
        }
    }

    if opts.trim_quantile > 0.0 {
        let q = opts.trim_quantile.min(0.49);
        for samples in out.values_mut() {
            if samples.durations.len() < 4 {
                continue;
            }
            let lo = supersim_dist::quantile::quantile(&samples.durations, q);
            let hi = supersim_dist::quantile::quantile(&samples.durations, 1.0 - q);
            let before = samples.durations.len();
            samples.durations.retain(|&d| d >= lo && d <= hi);
            samples.trimmed = before - samples.durations.len();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_trace::TraceEvent;

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.into(),
            task_id: id,
            start,
            end: start + dur,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        Trace::from_parts(4, events)
    }

    #[test]
    fn groups_by_kernel() {
        let t = trace(vec![
            ev(0, "gemm", 0, 0.0, 1.0),
            ev(0, "gemm", 1, 1.0, 1.2),
            ev(0, "trsm", 2, 2.2, 0.5),
        ]);
        let s = collect(
            &t,
            CollectOptions {
                exclude_first_per_worker: false,
                trim_quantile: 0.0,
            },
        );
        assert_eq!(s["gemm"].durations.len(), 2);
        assert_eq!(s["trsm"].durations.len(), 1);
    }

    #[test]
    fn excludes_first_call_per_worker() {
        let t = trace(vec![
            ev(0, "gemm", 0, 0.0, 5.0), // worker 0 warm-up
            ev(0, "gemm", 1, 5.0, 1.0),
            ev(1, "gemm", 2, 0.0, 5.0), // worker 1 warm-up
            ev(1, "gemm", 3, 5.0, 1.0),
            ev(0, "gemm", 4, 6.0, 1.0),
        ]);
        let s = collect(&t, CollectOptions::default());
        assert_eq!(s["gemm"].durations, vec![1.0, 1.0, 1.0]);
        assert_eq!(s["gemm"].warmup_durations, vec![5.0, 5.0]);
        assert_eq!(s["gemm"].warmup_factor(), 5.0);
    }

    #[test]
    fn first_call_detection_uses_chronological_order() {
        // Events given out of order: the earliest start is the warm-up.
        let t = trace(vec![ev(0, "k", 1, 10.0, 1.0), ev(0, "k", 0, 0.0, 9.0)]);
        let s = collect(&t, CollectOptions::default());
        assert_eq!(s["k"].warmup_durations, vec![9.0]);
        assert_eq!(s["k"].durations, vec![1.0]);
    }

    #[test]
    fn trim_quantile_drops_extremes() {
        let mut events = Vec::new();
        for i in 0..100 {
            events.push(ev(0, "k", i, i as f64, 1.0));
        }
        events.push(ev(0, "k", 100, 200.0, 50.0)); // huge outlier
        let t = trace(events);
        let s = collect(
            &t,
            CollectOptions {
                exclude_first_per_worker: false,
                trim_quantile: 0.01,
            },
        );
        assert!(s["k"].trimmed >= 1);
        assert!(s["k"].durations.iter().all(|&d| d < 10.0));
    }

    #[test]
    fn warmup_factor_floors_at_one() {
        // First call *faster* than the rest: factor must clamp to 1.
        let t = trace(vec![ev(0, "k", 0, 0.0, 0.1), ev(0, "k", 1, 1.0, 1.0)]);
        let s = collect(&t, CollectOptions::default());
        assert_eq!(s["k"].warmup_factor(), 1.0);
    }

    #[test]
    fn empty_trace_collects_nothing() {
        let s = collect(&Trace::new(2), CollectOptions::default());
        assert!(s.is_empty());
    }
}
