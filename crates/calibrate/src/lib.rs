//! # supersim-calibrate
//!
//! Kernel-model calibration: turn the wall-clock trace of a **real** run
//! into the per-kernel duration distributions the simulator consumes.
//!
//! This is the paper's timing methodology (§V-B1): rather than timing each
//! kernel in isolation (cold/warm-cache ambiguity), "the actual execution
//! of the algorithm \[provides\] the actual empirical data for future
//! estimation". The MKL-style initialization outliers ("the first kernel on
//! each thread will take significantly longer") are excluded per worker and
//! optionally folded back in as a warm-up factor on the fitted model.
//!
//! * [`collector`] — per-kernel sample extraction from a trace, with
//!   warm-up exclusion and quantile-based outlier trimming;
//! * [`fitter`] — distribution fitting + AIC selection per kernel class
//!   (normal / gamma / log-normal, §V-B2) into a
//!   [`supersim_core::ModelRegistry`];
//! * [`database`] — JSON persistence of a calibration;
//! * [`report`] — human-readable calibration summaries.

pub mod collector;
pub mod database;
pub mod fitter;
pub mod overhead;
pub mod report;

pub use collector::{collect, CollectOptions, KernelSamples};
pub use database::CalibrationDb;
pub use fitter::{calibrate, Calibration, FitOptions, LabelReport};
pub use overhead::{estimate as estimate_overhead, OverheadEstimate};
