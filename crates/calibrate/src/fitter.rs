//! Fit kernel models from collected samples (paper §V-B2).

use crate::collector::{collect, CollectOptions, KernelSamples};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use supersim_core::{KernelModel, ModelRegistry};
use supersim_dist::fit::{select_model, FittedModel};
use supersim_dist::Dist;
use supersim_trace::Trace;

/// Options controlling model fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Sample extraction options.
    pub collect: CollectOptions,
    /// Fold the excluded first-call durations back in as a warm-up factor
    /// on the fitted model.
    pub estimate_warmup: bool,
    /// Force a family (`"normal"`, `"gamma"`, `"lognormal"`) instead of
    /// AIC selection; falls back to the AIC winner if the family could not
    /// be fitted.
    pub force_family: Option<&'static str>,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            collect: CollectOptions::default(),
            estimate_warmup: true,
            force_family: None,
        }
    }
}

/// Fit summary for one kernel class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelReport {
    /// Number of samples used in the fit.
    pub samples: usize,
    /// Per-worker first calls excluded as warm-up.
    pub warmups_excluded: usize,
    /// Outliers trimmed.
    pub trimmed: usize,
    /// Sample mean (seconds).
    pub mean: f64,
    /// The chosen family name.
    pub family: String,
    /// Warm-up factor applied to the model.
    pub warmup_factor: f64,
    /// All fitted candidates with scores, ranked by AIC.
    pub candidates: Vec<FittedModel>,
}

/// A full calibration: models plus per-label diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The model registry to hand to a `SimSession`.
    pub registry: ModelRegistry,
    /// Per-label fitting diagnostics.
    pub reports: BTreeMap<String, LabelReport>,
}

/// Fit one kernel class from its samples.
pub fn fit_label(samples: &KernelSamples, opts: &FitOptions) -> Option<(KernelModel, LabelReport)> {
    let data = &samples.durations;
    let warmup_factor = if opts.estimate_warmup {
        samples.warmup_factor()
    } else {
        1.0
    };

    // Too few samples for a distribution fit: fall back to the mean
    // (a constant model) so small runs still calibrate.
    if data.len() < supersim_dist::fit::MIN_FIT_SAMPLES {
        if data.is_empty() && samples.warmup_durations.is_empty() {
            return None;
        }
        let mean = if data.is_empty() {
            samples.warmup_durations.iter().sum::<f64>() / samples.warmup_durations.len() as f64
        } else {
            samples.mean()
        };
        let model = KernelModel::with_warmup(Dist::constant(mean), warmup_factor);
        let report = LabelReport {
            samples: data.len(),
            warmups_excluded: samples.warmup_durations.len(),
            trimmed: samples.trimmed,
            mean,
            family: "constant".to_string(),
            warmup_factor,
            candidates: vec![],
        };
        return Some((model, report));
    }

    // All-equal samples: no spread to fit — use the constant model
    // directly (select_model would otherwise hand this to the exponential,
    // the only family that tolerates zero variance, which is a poor model).
    let spread = supersim_dist::moments::Moments::from_slice(data).sample_variance();
    if spread <= 0.0 {
        let model = KernelModel::with_warmup(Dist::constant(samples.mean()), warmup_factor);
        let report = LabelReport {
            samples: data.len(),
            warmups_excluded: samples.warmup_durations.len(),
            trimmed: samples.trimmed,
            mean: samples.mean(),
            family: "constant".to_string(),
            warmup_factor,
            candidates: vec![],
        };
        return Some((model, report));
    }

    let selection = match select_model(data) {
        Ok(s) => s,
        Err(_) => {
            // Degenerate data (e.g. all-equal durations): constant model.
            let model = KernelModel::with_warmup(Dist::constant(samples.mean()), warmup_factor);
            let report = LabelReport {
                samples: data.len(),
                warmups_excluded: samples.warmup_durations.len(),
                trimmed: samples.trimmed,
                mean: samples.mean(),
                family: "constant".to_string(),
                warmup_factor,
                candidates: vec![],
            };
            return Some((model, report));
        }
    };
    let chosen = opts
        .force_family
        .and_then(|f| selection.family(f))
        .unwrap_or_else(|| selection.best());
    let model = KernelModel::with_warmup(chosen.dist.clone(), warmup_factor);
    let report = LabelReport {
        samples: data.len(),
        warmups_excluded: samples.warmup_durations.len(),
        trimmed: samples.trimmed,
        mean: samples.mean(),
        family: chosen.dist.family().to_string(),
        warmup_factor,
        candidates: selection.candidates().to_vec(),
    };
    Some((model, report))
}

/// Calibrate every kernel class found in a real-run trace.
pub fn calibrate(trace: &Trace, opts: FitOptions) -> Calibration {
    let samples = collect(trace, opts.collect);
    let mut registry = ModelRegistry::new();
    let mut reports = BTreeMap::new();
    for (label, s) in &samples {
        if let Some((model, report)) = fit_label(s, &opts) {
            registry.insert(label.clone(), model);
            reports.insert(label.clone(), report);
        }
    }
    Calibration { registry, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use supersim_dist::Distribution;
    use supersim_trace::TraceEvent;

    fn synthetic_trace(label: &str, dist: &Dist, n: usize, seed: u64) -> Trace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = Trace::new(2);
        let mut clock = [0.0f64; 2];
        for i in 0..n {
            let w = i % 2;
            let d = dist.sample(&mut rng).max(1e-9);
            t.push(TraceEvent {
                worker: w,
                kernel: label.into(),
                task_id: i as u64,
                start: clock[w],
                end: clock[w] + d,
            });
            clock[w] += d;
        }
        t
    }

    #[test]
    fn recovers_lognormal_family() {
        let truth = Dist::log_normal(-5.0, 0.3).unwrap();
        let trace = synthetic_trace("dtsmqr", &truth, 5000, 1);
        let cal = calibrate(&trace, FitOptions::default());
        let report = &cal.reports["dtsmqr"];
        // Lognormal should win or at least be fitted among candidates.
        assert!(report
            .candidates
            .iter()
            .any(|c| c.dist.family() == "lognormal"));
        assert_eq!(report.family, cal.registry.expect("dtsmqr").dist.family());
        // Model mean close to truth mean.
        let fitted_mean = cal.registry.expect("dtsmqr").mean();
        assert!((fitted_mean - truth.mean()).abs() < 0.05 * truth.mean());
    }

    #[test]
    fn warmup_estimated_from_first_calls() {
        // Two workers; first call per worker is 10x.
        let mut t = Trace::new(2);
        let mut id = 0;
        for w in 0..2usize {
            let mut clock = 0.0;
            for i in 0..50 {
                let d = if i == 0 { 0.1 } else { 0.01 };
                t.push(TraceEvent {
                    worker: w,
                    kernel: "k".into(),
                    task_id: id,
                    start: clock,
                    end: clock + d,
                });
                clock += d;
                id += 1;
            }
        }
        let cal = calibrate(&trace_with(t), FitOptions::default());
        let report = &cal.reports["k"];
        assert_eq!(report.warmups_excluded, 2);
        assert!(
            (report.warmup_factor - 10.0).abs() < 0.5,
            "factor {}",
            report.warmup_factor
        );
    }

    fn trace_with(t: Trace) -> Trace {
        t
    }

    #[test]
    fn few_samples_fall_back_to_constant() {
        let mut t = Trace::new(1);
        for i in 0..3u64 {
            t.push(TraceEvent {
                worker: 0,
                kernel: "rare".into(),
                task_id: i,
                start: i as f64,
                end: i as f64 + 0.5,
            });
        }
        let cal = calibrate(
            &t,
            FitOptions {
                collect: CollectOptions {
                    exclude_first_per_worker: false,
                    trim_quantile: 0.0,
                },
                ..Default::default()
            },
        );
        assert_eq!(cal.reports["rare"].family, "constant");
        assert_eq!(cal.registry.expect("rare").mean(), 0.5);
    }

    #[test]
    fn degenerate_equal_samples_fit_constant() {
        let mut t = Trace::new(1);
        for i in 0..20u64 {
            t.push(TraceEvent {
                worker: 0,
                kernel: "exact".into(),
                task_id: i,
                start: i as f64,
                end: i as f64 + 0.25,
            });
        }
        let cal = calibrate(
            &t,
            FitOptions {
                collect: CollectOptions {
                    exclude_first_per_worker: false,
                    trim_quantile: 0.0,
                },
                ..Default::default()
            },
        );
        assert_eq!(cal.reports["exact"].family, "constant");
        assert_eq!(cal.registry.expect("exact").mean(), 0.25);
    }

    #[test]
    fn force_family_overrides_aic() {
        let truth = Dist::gamma(9.0, 0.001).unwrap();
        let trace = synthetic_trace("dgemm", &truth, 3000, 2);
        let cal = calibrate(
            &trace,
            FitOptions {
                force_family: Some("normal"),
                ..Default::default()
            },
        );
        assert_eq!(cal.reports["dgemm"].family, "normal");
    }

    #[test]
    fn calibration_serde_round_trip() {
        let truth = Dist::normal(0.01, 0.001).unwrap();
        let trace = synthetic_trace("k", &truth, 500, 3);
        let cal = calibrate(&trace, FitOptions::default());
        let json = serde_json::to_string(&cal).unwrap();
        let back: Calibration = serde_json::from_str(&json).unwrap();
        assert_eq!(cal, back);
    }
}
