//! Scheduler-overhead estimation from trace gaps.
//!
//! The paper attributes its residual error to unmodeled scheduler costs
//! ("start-up performance penalties", §VII). In a dense single-worker
//! trace the time between one task's end and the next task's start on the
//! same worker is almost pure scheduler bookkeeping — dependence updates,
//! dispatch, locking. The median of those gaps is a robust per-task
//! overhead estimate that can be fed into
//! `supersim_core::SimConfig::overhead_per_task`.

use supersim_trace::Trace;

/// Per-worker gap statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadEstimate {
    /// Median inter-task gap across all workers (seconds).
    pub median_gap: f64,
    /// Mean inter-task gap.
    pub mean_gap: f64,
    /// Number of gaps measured.
    pub gaps: usize,
    /// Fraction of the makespan spent in gaps (all workers).
    pub gap_fraction: f64,
}

/// Estimate the per-task scheduler overhead from a real trace.
///
/// Returns `None` when the trace has fewer than 2 events on every worker.
/// Gaps are clamped at zero (clock jitter can make them marginally
/// negative) and gaps longer than `cap` seconds are excluded — a long gap
/// means the worker was *starved* (no ready task), which is a property of
/// the DAG, not scheduler overhead.
pub fn estimate(trace: &Trace, cap: f64) -> Option<OverheadEstimate> {
    let mut gaps: Vec<f64> = Vec::new();
    let mut total_gap = 0.0;
    for w in 0..trace.workers {
        let mut lane: Vec<(f64, f64)> = trace.lane(w).map(|e| (e.start, e.end)).collect();
        lane.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in lane.windows(2) {
            let gap = (pair[1].0 - pair[0].1).max(0.0);
            total_gap += gap;
            if gap <= cap {
                gaps.push(gap);
            }
        }
    }
    if gaps.is_empty() {
        return None;
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let median_gap = supersim_dist::quantile::median(&gaps);
    let makespan = trace.makespan();
    let gap_fraction = if makespan > 0.0 && trace.workers > 0 {
        total_gap / (trace.workers as f64 * makespan)
    } else {
        0.0
    };
    Some(OverheadEstimate {
        median_gap,
        mean_gap,
        gaps: gaps.len(),
        gap_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_trace::TraceEvent;

    fn ev(w: usize, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker: w,
            kernel: "k".into(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn uniform_gaps_estimated_exactly() {
        let mut t = Trace::new(1);
        // Tasks of 1.0 with 0.1 gaps.
        let mut clock = 0.0;
        for i in 0..10 {
            t.push(ev(0, i, clock, clock + 1.0));
            clock += 1.1;
        }
        let est = estimate(&t, 1.0).unwrap();
        assert!((est.median_gap - 0.1).abs() < 1e-12);
        assert!((est.mean_gap - 0.1).abs() < 1e-12);
        assert_eq!(est.gaps, 9);
    }

    #[test]
    fn starvation_gaps_excluded_by_cap() {
        let mut t = Trace::new(1);
        t.push(ev(0, 0, 0.0, 1.0));
        t.push(ev(0, 1, 1.01, 2.0)); // 10 ms bookkeeping gap
        t.push(ev(0, 2, 10.0, 11.0)); // 8 s starvation gap
        let est = estimate(&t, 0.1).unwrap();
        assert_eq!(est.gaps, 1);
        assert!((est.median_gap - 0.01).abs() < 1e-12);
        assert!(
            est.gap_fraction > 0.5,
            "starvation still counts toward gap_fraction"
        );
    }

    #[test]
    fn overlapping_tasks_clamp_to_zero() {
        let mut t = Trace::new(1);
        t.push(ev(0, 0, 0.0, 1.0));
        t.push(ev(0, 1, 0.9, 2.0));
        let est = estimate(&t, 1.0).unwrap();
        assert_eq!(est.median_gap, 0.0);
    }

    #[test]
    fn too_few_events_yields_none() {
        let mut t = Trace::new(2);
        t.push(ev(0, 0, 0.0, 1.0));
        t.push(ev(1, 1, 0.0, 1.0));
        assert!(estimate(&t, 1.0).is_none());
        assert!(estimate(&Trace::new(1), 1.0).is_none());
    }

    #[test]
    fn multi_worker_gaps_pooled() {
        let mut t = Trace::new(2);
        for w in 0..2usize {
            let mut clock = 0.0;
            for i in 0..5 {
                t.push(ev(w, (w * 10 + i) as u64, clock, clock + 1.0));
                clock += 1.0 + 0.05 * (w as f64 + 1.0);
            }
        }
        let est = estimate(&t, 1.0).unwrap();
        assert_eq!(est.gaps, 8);
        // Median across pooled gaps of 0.05 and 0.10.
        assert!(est.median_gap >= 0.05 && est.median_gap <= 0.10);
    }
}
