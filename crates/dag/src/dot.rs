//! Graphviz DOT export — regenerates the paper's Fig. 1 (QR DAG).
//!
//! Multi-edges are rendered either as parallel edges (Fig. 1 style) or as a
//! single edge labeled with its multiplicity.

use crate::graph::TaskGraph;
use std::fmt::Write as _;

/// How to render edges that carry more than one data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiEdgeStyle {
    /// Draw one parallel edge per dependence (as in paper Fig. 1).
    Parallel,
    /// Draw a single edge with an `xN` label.
    Labeled,
}

/// DOT export options.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Multi-edge rendering.
    pub multi_edges: MultiEdgeStyle,
    /// Color nodes by kernel label.
    pub color_by_label: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "taskdag".to_string(),
            multi_edges: MultiEdgeStyle::Parallel,
            color_by_label: true,
        }
    }
}

/// Fill colors cycled over distinct labels.
const NODE_COLORS: [&str; 8] = [
    "#a6cee3", "#fdbf6f", "#b2df8a", "#fb9a99", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

/// Render the graph to DOT.
pub fn to_dot(g: &TaskGraph, opts: &DotOptions) -> String {
    let mut labels: Vec<&str> = Vec::new();
    for n in g.nodes() {
        if !labels.contains(&n.label.as_str()) {
            labels.push(&n.label);
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", opts.name);
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(
        s,
        "  node [shape=ellipse, style=filled, fontname=\"sans-serif\"];"
    );
    for (i, n) in g.nodes().iter().enumerate() {
        let color = if opts.color_by_label {
            let li = labels.iter().position(|&l| l == n.label).unwrap_or(0);
            NODE_COLORS[li % NODE_COLORS.len()]
        } else {
            "#ffffff"
        };
        let _ = writeln!(
            s,
            "  t{i} [label=\"{}\\n#{i}\", fillcolor=\"{color}\"];",
            n.label
        );
    }
    for (from, to, mult) in g.edges() {
        match opts.multi_edges {
            MultiEdgeStyle::Parallel => {
                for _ in 0..mult {
                    let _ = writeln!(s, "  t{from} -> t{to};");
                }
            }
            MultiEdgeStyle::Labeled => {
                if mult > 1 {
                    let _ = writeln!(s, "  t{from} -> t{to} [label=\"x{mult}\"];");
                } else {
                    let _ = writeln!(s, "  t{from} -> t{to};");
                }
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Render with default options.
pub fn to_dot_default(g: &TaskGraph) -> String {
    to_dot(g, &DotOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskNode;

    fn graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_node(TaskNode {
            label: "geqrt".into(),
            weight: 1.0,
            accesses: vec![],
        });
        g.add_node(TaskNode {
            label: "tsqrt".into(),
            weight: 1.0,
            accesses: vec![],
        });
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g
    }

    #[test]
    fn dot_has_nodes_and_edges() {
        let dot = to_dot_default(&graph());
        assert!(dot.starts_with("digraph taskdag {"));
        assert!(dot.contains("t0 [label=\"geqrt"));
        assert!(dot.contains("t1 [label=\"tsqrt"));
        assert_eq!(dot.matches("t0 -> t1;").count(), 2, "parallel edges");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labeled_style_collapses_multiplicity() {
        let dot = to_dot(
            &graph(),
            &DotOptions {
                multi_edges: MultiEdgeStyle::Labeled,
                ..Default::default()
            },
        );
        assert!(dot.contains("t0 -> t1 [label=\"x2\"];"));
        assert_eq!(dot.matches("t0 -> t1").count(), 1);
    }

    #[test]
    fn same_label_same_color() {
        let mut g = TaskGraph::new();
        g.add_node(TaskNode {
            label: "gemm".into(),
            weight: 1.0,
            accesses: vec![],
        });
        g.add_node(TaskNode {
            label: "gemm".into(),
            weight: 1.0,
            accesses: vec![],
        });
        let dot = to_dot_default(&g);
        let color = NODE_COLORS[0];
        assert_eq!(dot.matches(color).count(), 2);
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot_default(&TaskGraph::new());
        assert!(dot.contains("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
