//! Anti-dependence elimination by data renaming.
//!
//! Some schedulers "perform copies of the data to deal with
//! anti-dependences" (paper §V-D): giving each write a fresh version of its
//! output region removes every WaR and WaW hazard, leaving only true RaW
//! data flow. This module rewrites a serial access stream that way and is
//! used both by the StarPU-profile runtime (which models those copies) and
//! by the analysis benches that quantify how much parallelism renaming
//! exposes.

use crate::access::{Access, AccessMode, DataId};
use crate::build::DagBuilder;
use crate::graph::TaskGraph;
use std::collections::HashMap;

/// Base of the fresh-version id namespace: the top bit, so fresh ids can
/// never collide with original region ids (which must stay below it —
/// enforced at rewrite time). Without a disjoint namespace, a fresh id
/// handed out early could alias an original region that first appears
/// later in the stream, fabricating dependences.
const FRESH_BASE: u64 = 1 << 63;

/// Rewrites accesses so every write targets a fresh data version.
#[derive(Debug, Default, Clone)]
pub struct Renamer {
    /// Current version of each original region.
    current: HashMap<DataId, DataId>,
    /// Count of fresh versions handed out.
    next_fresh: u64,
}

impl Renamer {
    /// Fresh renamer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewrite one task's access list.
    ///
    /// Reads are redirected to the current version of their region; writes
    /// allocate a fresh version. A `ReadWrite` access reads the current
    /// version and writes a fresh one — it is split into a read of the old
    /// version plus a write of the new version, which is exactly what a
    /// copy-on-write runtime does.
    pub fn rewrite(&mut self, accesses: &[Access]) -> Vec<Access> {
        let mut out = Vec::with_capacity(accesses.len() + 2);
        for &a in accesses {
            assert!(
                a.data.0 < FRESH_BASE,
                "original data ids must stay below 2^63"
            );
            match a.mode {
                AccessMode::Read => {
                    out.push(Access::read(self.version_of(a.data)));
                }
                AccessMode::Write => {
                    let fresh = self.fresh_version(a.data);
                    out.push(Access::write(fresh));
                }
                AccessMode::ReadWrite => {
                    let old = self.version_of(a.data);
                    let fresh = self.fresh_version(a.data);
                    out.push(Access::read(old));
                    out.push(Access::write(fresh));
                }
            }
        }
        out
    }

    fn version_of(&mut self, id: DataId) -> DataId {
        *self.current.entry(id).or_insert(id)
    }

    fn fresh_version(&mut self, id: DataId) -> DataId {
        let fresh = DataId(FRESH_BASE + self.next_fresh);
        self.next_fresh += 1;
        self.current.insert(id, fresh);
        fresh
    }
}

/// Build a DAG from `(label, weight, accesses)` submissions with renaming
/// applied, so the result contains only true (RaW) dependences.
pub fn build_renamed<'a, I>(stream: I) -> TaskGraph
where
    I: IntoIterator<Item = (&'a str, f64, Vec<Access>)>,
{
    let mut renamer = Renamer::new();
    let mut builder = DagBuilder::new();
    for (label, weight, accesses) in stream {
        let renamed = renamer.rewrite(&accesses);
        builder.submit(label, weight, &renamed);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DataId {
        DataId(i)
    }

    #[test]
    fn war_is_eliminated() {
        let g = build_renamed(vec![
            ("r", 1.0, vec![Access::read(d(0))]),
            ("w", 1.0, vec![Access::write(d(0))]),
        ]);
        assert_eq!(g.edge_count(), 0, "WaR must disappear under renaming");
    }

    #[test]
    fn waw_is_eliminated() {
        let g = build_renamed(vec![
            ("w1", 1.0, vec![Access::write(d(0))]),
            ("w2", 1.0, vec![Access::write(d(0))]),
        ]);
        assert_eq!(g.edge_count(), 0, "WaW must disappear under renaming");
    }

    #[test]
    fn raw_is_preserved() {
        let g = build_renamed(vec![
            ("w", 1.0, vec![Access::write(d(0))]),
            ("r", 1.0, vec![Access::read(d(0))]),
        ]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn readwrite_chain_stays_serial() {
        // RW -> RW on the same region is a true flow dependence.
        let g = build_renamed(vec![
            ("a", 1.0, vec![Access::read_write(d(0))]),
            ("b", 1.0, vec![Access::read_write(d(0))]),
            ("c", 1.0, vec![Access::read_write(d(0))]),
        ]);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
    }

    #[test]
    fn reader_sees_version_at_submission() {
        // r2 submitted after w2 must read w2's output, not w1's.
        let g = build_renamed(vec![
            ("w1", 1.0, vec![Access::write(d(0))]),
            ("r1", 1.0, vec![Access::read(d(0))]),
            ("w2", 1.0, vec![Access::write(d(0))]),
            ("r2", 1.0, vec![Access::read(d(0))]),
        ]);
        assert_eq!(g.edge_multiplicity(0, 1), 1); // w1 -> r1
        assert_eq!(g.edge_multiplicity(2, 3), 1); // w2 -> r2
        assert_eq!(g.edge_multiplicity(0, 3), 0);
        assert_eq!(g.edge_multiplicity(1, 2), 0); // WaR gone
        assert_eq!(g.edge_multiplicity(0, 2), 0); // WaW gone
    }

    #[test]
    fn renaming_never_adds_edges() {
        // The renamed DAG's edges are a subset of the original orderings.
        let stream = vec![
            ("a", 1.0, vec![Access::write(d(0)), Access::read(d(1))]),
            ("b", 1.0, vec![Access::read(d(0)), Access::write(d(1))]),
            ("c", 1.0, vec![Access::read_write(d(0))]),
            ("e", 1.0, vec![Access::read(d(1))]),
        ];
        let renamed = build_renamed(stream.clone());
        let mut plain = DagBuilder::new();
        for (l, w, acc) in &stream {
            plain.submit(l, *w, acc);
        }
        let plain = plain.finish();
        for (f, t, _) in renamed.edges() {
            assert!(
                plain.edge_multiplicity(f, t) > 0,
                "renaming invented edge {f}->{t}"
            );
        }
        assert!(renamed.edge_count() <= plain.edge_count());
    }

    #[test]
    fn fresh_ids_do_not_collide_with_originals() {
        let mut r = Renamer::new();
        let out = r.rewrite(&[Access::write(d(100))]);
        assert_ne!(out[0].data, d(100));
        assert!(out[0].data.0 >= FRESH_BASE);
        // The regression proptest found: a fresh id must not alias an
        // original id that first appears later in the stream.
        let later = r.rewrite(&[Access::read_write(DataId(out[0].data.0 & !FRESH_BASE))]);
        assert!(later.iter().all(|a| a.data != out[0].data));
    }

    #[test]
    #[should_panic(expected = "below 2^63")]
    fn huge_original_ids_rejected() {
        let mut r = Renamer::new();
        r.rewrite(&[Access::write(DataId(FRESH_BASE + 1))]);
    }
}
