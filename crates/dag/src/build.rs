//! Superscalar hazard analysis: serial task stream → dependence DAG.
//!
//! Mirrors what QUARK/StarPU/OmpSs do at submission time (paper §IV-A):
//! for each data region track the last writer and the readers since that
//! write, and emit
//!
//! * **RaW** edges from the last writer to each subsequent reader,
//! * **WaR** edges from each of those readers to the next writer,
//! * **WaW** edges from the last writer to the next writer.
//!
//! Each hazard contributes to the multiplicity of the edge in the graph:
//! two tasks linked through two different tiles get a multiplicity-2 edge,
//! exactly the "multiple edges from a parent node" of paper Fig. 1.
//!
//! Because every edge points from an earlier submission to a later one,
//! graphs produced here are acyclic by construction.

use crate::access::{normalize_accesses, Access, DataId};
use crate::graph::{TaskGraph, TaskId, TaskNode};
use std::collections::HashMap;

/// Per-data dependence state.
#[derive(Debug, Default, Clone)]
struct DataState {
    last_writer: Option<TaskId>,
    /// Readers since the last write.
    readers: Vec<TaskId>,
}

/// Incremental DAG construction from a serial stream of task submissions.
///
/// ```
/// use supersim_dag::{Access, DagBuilder, DataId};
///
/// let mut b = DagBuilder::new();
/// let x = DataId(0);
/// let t0 = b.submit("write_x", 1.0, &[Access::write(x)]);
/// let t1 = b.submit("read_x", 1.0, &[Access::read(x)]);
/// let g = b.finish();
/// assert_eq!(g.successors(t0), &[t1]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    graph: TaskGraph,
    state: HashMap<DataId, DataState>,
}

impl DagBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit one task; returns its id. Hazard edges against all earlier
    /// tasks are added immediately.
    pub fn submit(&mut self, label: &str, weight: f64, accesses: &[Access]) -> TaskId {
        let accesses = normalize_accesses(accesses);
        let id = self.graph.add_node(TaskNode {
            label: label.to_string(),
            weight,
            accesses: accesses.clone(),
        });
        for a in &accesses {
            let st = self.state.entry(a.data).or_default();

            // Edges from the pre-update state. For a ReadWrite access the
            // dependence on the previous writer is a single data flow, so
            // the RaW edge subsumes the WaW edge (added once).
            if a.mode.reads() || a.mode.writes() {
                if let Some(w) = st.last_writer {
                    if w != id {
                        self.graph.add_edge(w, id); // RaW or WaW
                    }
                }
            }
            if a.mode.writes() {
                for &r in &st.readers {
                    if r != id {
                        self.graph.add_edge(r, id); // WaR
                    }
                }
            }

            // State update.
            if a.mode.writes() {
                st.last_writer = Some(id);
                st.readers.clear();
            } else {
                st.readers.push(id);
            }
        }
        id
    }

    /// Finish and return the graph.
    pub fn finish(self) -> TaskGraph {
        self.graph
    }

    /// Borrow the graph built so far.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;

    fn d(i: u64) -> DataId {
        DataId(i)
    }

    #[test]
    fn raw_hazard() {
        let mut b = DagBuilder::new();
        let w = b.submit("w", 1.0, &[Access::write(d(0))]);
        let r1 = b.submit("r1", 1.0, &[Access::read(d(0))]);
        let r2 = b.submit("r2", 1.0, &[Access::read(d(0))]);
        let g = b.finish();
        assert_eq!(g.successors(w), &[r1, r2]);
        assert!(g.successors(r1).is_empty());
        // Readers do not depend on each other.
        assert_eq!(g.edge_multiplicity(r1, r2), 0);
    }

    #[test]
    fn war_hazard() {
        let mut b = DagBuilder::new();
        let r = b.submit("r", 1.0, &[Access::read(d(0))]);
        let w = b.submit("w", 1.0, &[Access::write(d(0))]);
        let g = b.finish();
        assert_eq!(g.successors(r), &[w]);
    }

    #[test]
    fn waw_hazard() {
        let mut b = DagBuilder::new();
        let w1 = b.submit("w1", 1.0, &[Access::write(d(0))]);
        let w2 = b.submit("w2", 1.0, &[Access::write(d(0))]);
        let g = b.finish();
        assert_eq!(g.successors(w1), &[w2]);
    }

    #[test]
    fn write_clears_reader_set() {
        let mut b = DagBuilder::new();
        let r1 = b.submit("r1", 1.0, &[Access::read(d(0))]);
        let w = b.submit("w", 1.0, &[Access::write(d(0))]);
        let w2 = b.submit("w2", 1.0, &[Access::write(d(0))]);
        let g = b.finish();
        // r1 -> w (WaR), w -> w2 (WaW); but no r1 -> w2.
        assert_eq!(g.edge_multiplicity(r1, w), 1);
        assert_eq!(g.edge_multiplicity(w, w2), 1);
        assert_eq!(g.edge_multiplicity(r1, w2), 0);
    }

    #[test]
    fn readwrite_chain_is_serial() {
        let mut b = DagBuilder::new();
        let t0 = b.submit("t0", 1.0, &[Access::read_write(d(0))]);
        let t1 = b.submit("t1", 1.0, &[Access::read_write(d(0))]);
        let t2 = b.submit("t2", 1.0, &[Access::read_write(d(0))]);
        let g = b.finish();
        assert_eq!(g.successors(t0), &[t1]);
        assert_eq!(g.successors(t1), &[t2]);
        // RaW subsumes WaW: multiplicity stays 1 per link.
        assert_eq!(g.edge_multiplicity(t0, t1), 1);
    }

    #[test]
    fn multiplicity_from_two_tiles() {
        // Task B depends on task A through two different tiles -> one edge
        // with multiplicity 2 (Fig. 1's parallel edges).
        let mut b = DagBuilder::new();
        let a = b.submit("a", 1.0, &[Access::write(d(0)), Access::write(d(1))]);
        let t = b.submit("b", 1.0, &[Access::read(d(0)), Access::read(d(1))]);
        let g = b.finish();
        assert_eq!(g.edge_multiplicity(a, t), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.dependence_count(), 2);
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = DagBuilder::new();
        b.submit("a", 1.0, &[Access::write(d(0))]);
        b.submit("b", 1.0, &[Access::write(d(1))]);
        let g = b.finish();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sources().len(), 2);
    }

    #[test]
    fn duplicate_access_is_normalized() {
        let mut b = DagBuilder::new();
        let t = b.submit("t", 1.0, &[Access::read(d(0)), Access::write(d(0))]);
        let g = b.finish();
        assert_eq!(g.node(t).accesses.len(), 1);
        assert_eq!(g.node(t).accesses[0].mode, AccessMode::ReadWrite);
    }

    #[test]
    fn edges_always_point_forward() {
        // Pseudo-random stream; every edge must go old -> new.
        let mut b = DagBuilder::new();
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for i in 0..200 {
            let da = d((next() % 10) as u64);
            let db = d((next() % 10) as u64);
            let mode = match next() % 3 {
                0 => Access::read(da),
                1 => Access::write(da),
                _ => Access::read_write(da),
            };
            b.submit(&format!("t{i}"), 1.0, &[mode, Access::read(db)]);
        }
        let g = b.finish();
        for (f, t, _) in g.edges() {
            assert!(f < t, "edge {f} -> {t} points backward");
        }
    }

    #[test]
    fn brute_force_conflicts_are_transitively_covered() {
        // Every conflicting task pair must be ordered in the DAG's
        // transitive closure (the hazard analysis may elide transitive
        // edges but must never lose an ordering).
        let mut b = DagBuilder::new();
        let mut seed = 999u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let mut streams: Vec<Vec<Access>> = Vec::new();
        for _ in 0..60 {
            let n_acc = 1 + next() % 3;
            let mut acc = Vec::new();
            for _ in 0..n_acc {
                let data = d((next() % 6) as u64);
                acc.push(match next() % 3 {
                    0 => Access::read(data),
                    1 => Access::write(data),
                    _ => Access::read_write(data),
                });
            }
            acc = crate::access::normalize_accesses(&acc);
            streams.push(acc);
        }
        for (i, acc) in streams.iter().enumerate() {
            b.submit(&format!("t{i}"), 1.0, acc);
        }
        let g = b.finish();

        // Reachability via DFS per node.
        let n = g.len();
        let mut reach = vec![vec![false; n]; n];
        for s in (0..n).rev() {
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for &v in g.successors(u) {
                    if !reach[s][v] {
                        reach[s][v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let conflict = streams[i].iter().any(|a| {
                    streams[j]
                        .iter()
                        .any(|b| a.data == b.data && a.mode.conflicts_with(b.mode))
                });
                if conflict {
                    assert!(reach[i][j], "conflicting pair ({i},{j}) not ordered");
                }
            }
        }
    }
}
