//! Topological sorting, acyclicity checks, and schedule validation.

use crate::graph::{TaskGraph, TaskId};

/// Kahn's algorithm. Returns a topological order, or `Err` with one task id
/// on a cycle if the graph is cyclic.
pub fn topological_sort(g: &TaskGraph) -> Result<Vec<TaskId>, TaskId> {
    let n = g.len();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.predecessors(i).len()).collect();
    // A queue ordered by task id keeps the sort deterministic.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<TaskId>> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(u)) = ready.pop() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(std::cmp::Reverse(v));
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node still has nonzero in-degree: it is on or behind a cycle.
        Err((0..n)
            .find(|&i| indeg[i] > 0)
            .expect("cycle implies leftover in-degree"))
    }
}

/// Whether the graph is acyclic.
pub fn is_acyclic(g: &TaskGraph) -> bool {
    topological_sort(g).is_ok()
}

/// A scheduled task instance: when and where the schedule claims it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledTask {
    /// Task id (index into the graph).
    pub task: TaskId,
    /// Worker the task ran on.
    pub worker: usize,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Validate that a schedule respects the DAG and resource exclusivity:
///
/// 1. every graph task appears exactly once,
/// 2. every task starts no earlier than all its predecessors end
///    (within `tol`),
/// 3. tasks sharing a worker do not overlap (within `tol`).
pub fn validate_schedule(
    g: &TaskGraph,
    schedule: &[ScheduledTask],
    tol: f64,
) -> Result<(), String> {
    let n = g.len();
    let mut seen = vec![false; n];
    for s in schedule {
        if s.task >= n {
            return Err(format!("schedule references unknown task {}", s.task));
        }
        if seen[s.task] {
            return Err(format!("task {} scheduled twice", s.task));
        }
        seen[s.task] = true;
        if s.end < s.start {
            return Err(format!("task {} ends before start", s.task));
        }
    }
    if let Some(missing) = seen.iter().position(|&b| !b) {
        return Err(format!("task {missing} never scheduled"));
    }

    // Precedence.
    let mut end_of = vec![0.0f64; n];
    let mut start_of = vec![0.0f64; n];
    for s in schedule {
        end_of[s.task] = s.end;
        start_of[s.task] = s.start;
    }
    for (t, &t_start) in start_of.iter().enumerate() {
        for &p in g.predecessors(t) {
            if t_start < end_of[p] - tol {
                return Err(format!(
                    "task {t} starts at {t_start:.9} before predecessor {p} ends at {:.9}",
                    end_of[p]
                ));
            }
        }
    }

    // Worker exclusivity.
    let mut by_worker: std::collections::BTreeMap<usize, Vec<&ScheduledTask>> =
        std::collections::BTreeMap::new();
    for s in schedule {
        by_worker.entry(s.worker).or_default().push(s);
    }
    for (w, mut tasks) in by_worker {
        tasks.sort_by(|a, b| a.start.total_cmp(&b.start));
        for pair in tasks.windows(2) {
            if pair[1].start < pair[0].end - tol {
                return Err(format!(
                    "worker {w}: tasks {} and {} overlap",
                    pair[0].task, pair[1].task
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskNode;

    fn node() -> TaskNode {
        TaskNode {
            label: "t".into(),
            weight: 1.0,
            accesses: vec![],
        }
    }

    fn diamond() -> TaskGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_node(node());
        }
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn topo_sort_diamond() {
        let order = topological_sort(&diamond()).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(is_acyclic(&diamond()));
    }

    #[test]
    fn topo_sort_empty() {
        assert_eq!(
            topological_sort(&TaskGraph::new()).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn valid_schedule_passes() {
        let g = diamond();
        let sched = vec![
            ScheduledTask {
                task: 0,
                worker: 0,
                start: 0.0,
                end: 1.0,
            },
            ScheduledTask {
                task: 1,
                worker: 0,
                start: 1.0,
                end: 2.0,
            },
            ScheduledTask {
                task: 2,
                worker: 1,
                start: 1.0,
                end: 2.5,
            },
            ScheduledTask {
                task: 3,
                worker: 0,
                start: 2.5,
                end: 3.0,
            },
        ];
        assert!(validate_schedule(&g, &sched, 1e-9).is_ok());
    }

    #[test]
    fn precedence_violation_detected() {
        let g = diamond();
        let sched = vec![
            ScheduledTask {
                task: 0,
                worker: 0,
                start: 0.0,
                end: 1.0,
            },
            ScheduledTask {
                task: 1,
                worker: 0,
                start: 1.0,
                end: 2.0,
            },
            ScheduledTask {
                task: 2,
                worker: 1,
                start: 1.0,
                end: 2.5,
            },
            // Starts before predecessor 2 ends.
            ScheduledTask {
                task: 3,
                worker: 0,
                start: 2.0,
                end: 3.0,
            },
        ];
        let err = validate_schedule(&g, &sched, 1e-9).unwrap_err();
        assert!(err.contains("before predecessor"));
    }

    #[test]
    fn overlap_on_worker_detected() {
        let mut g = TaskGraph::new();
        g.add_node(node());
        g.add_node(node());
        let sched = vec![
            ScheduledTask {
                task: 0,
                worker: 0,
                start: 0.0,
                end: 2.0,
            },
            ScheduledTask {
                task: 1,
                worker: 0,
                start: 1.0,
                end: 3.0,
            },
        ];
        let err = validate_schedule(&g, &sched, 1e-9).unwrap_err();
        assert!(err.contains("overlap"));
    }

    #[test]
    fn missing_and_duplicate_tasks_detected() {
        let g = diamond();
        let sched = vec![ScheduledTask {
            task: 0,
            worker: 0,
            start: 0.0,
            end: 1.0,
        }];
        assert!(validate_schedule(&g, &sched, 0.0)
            .unwrap_err()
            .contains("never scheduled"));

        let sched2 = vec![
            ScheduledTask {
                task: 0,
                worker: 0,
                start: 0.0,
                end: 1.0,
            },
            ScheduledTask {
                task: 0,
                worker: 1,
                start: 0.0,
                end: 1.0,
            },
        ];
        assert!(validate_schedule(&g, &sched2, 0.0)
            .unwrap_err()
            .contains("twice"));
    }

    #[test]
    fn tolerance_allows_small_overlap() {
        let g = {
            let mut g = TaskGraph::new();
            g.add_node(node());
            g.add_node(node());
            g.add_edge(0, 1);
            g
        };
        let sched = vec![
            ScheduledTask {
                task: 0,
                worker: 0,
                start: 0.0,
                end: 1.0,
            },
            ScheduledTask {
                task: 1,
                worker: 0,
                start: 1.0 - 1e-12,
                end: 2.0,
            },
        ];
        assert!(validate_schedule(&g, &sched, 1e-9).is_ok());
    }
}
