//! Structural DAG analysis: depth, width, and parallelism profiles.
//!
//! Developers "visualize these DAGs in order to gain a greater understanding
//! of how well their algorithms could perform" (paper §IV-A); these metrics
//! are the quantitative version of that look.

use crate::critical_path::critical_path;
use crate::graph::TaskGraph;
use crate::validate::topological_sort;
use serde::{Deserialize, Serialize};

/// Structural profile of a DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagProfile {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// Total dependences (edge multiplicities summed).
    pub dependences: u64,
    /// Number of levels (longest chain in hops + 1; 0 for empty).
    pub depth: usize,
    /// Tasks per level (level = longest hop-distance from any source).
    pub width_profile: Vec<usize>,
    /// Maximum width over all levels.
    pub max_width: usize,
    /// Total work (sum of weights).
    pub total_work: f64,
    /// Weighted critical-path length.
    pub critical_path: f64,
    /// `total_work / critical_path` — the average parallelism, an upper
    /// bound on useful worker count.
    pub avg_parallelism: f64,
}

/// Compute the level (longest hop-distance from a source) of each task.
pub fn levels(g: &TaskGraph) -> Vec<usize> {
    let order = topological_sort(g).expect("levels require a DAG");
    let mut lvl = vec![0usize; g.len()];
    for &u in &order {
        for &p in g.predecessors(u) {
            lvl[u] = lvl[u].max(lvl[p] + 1);
        }
    }
    lvl
}

/// Build the full structural profile.
pub fn profile(g: &TaskGraph) -> DagProfile {
    let lvl = levels(g);
    let depth = lvl.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut width_profile = vec![0usize; depth];
    for &l in &lvl {
        width_profile[l] += 1;
    }
    let max_width = width_profile.iter().copied().max().unwrap_or(0);
    let cp = critical_path(g);
    let total_work = g.total_weight();
    let avg_parallelism = if cp.length > 0.0 {
        total_work / cp.length
    } else {
        0.0
    };
    DagProfile {
        tasks: g.len(),
        edges: g.edge_count(),
        dependences: g.dependence_count(),
        depth,
        width_profile,
        max_width,
        total_work,
        critical_path: cp.length,
        avg_parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskNode;

    fn node(w: f64) -> TaskNode {
        TaskNode {
            label: "t".into(),
            weight: w,
            accesses: vec![],
        }
    }

    #[test]
    fn chain_profile() {
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_node(node(1.0));
        }
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let p = profile(&g);
        assert_eq!(p.depth, 4);
        assert_eq!(p.width_profile, vec![1, 1, 1, 1]);
        assert_eq!(p.max_width, 1);
        assert!((p.avg_parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fork_join_profile() {
        // 0 -> {1,2,3} -> 4
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            g.add_node(node(1.0));
        }
        for t in 1..=3 {
            g.add_edge(0, t);
            g.add_edge(t, 4);
        }
        let p = profile(&g);
        assert_eq!(p.depth, 3);
        assert_eq!(p.width_profile, vec![1, 3, 1]);
        assert_eq!(p.max_width, 3);
        assert!((p.critical_path - 3.0).abs() < 1e-12);
        assert!((p.avg_parallelism - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = profile(&TaskGraph::new());
        assert_eq!(p.tasks, 0);
        assert_eq!(p.depth, 0);
        assert_eq!(p.avg_parallelism, 0.0);
    }

    #[test]
    fn levels_ignore_edge_multiplicity() {
        let mut g = TaskGraph::new();
        g.add_node(node(1.0));
        g.add_node(node(1.0));
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(levels(&g), vec![0, 1]);
    }
}
