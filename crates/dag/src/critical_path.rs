//! Weighted critical path and level analysis.
//!
//! The critical path bounds the makespan from below on any number of
//! workers; bottom-levels drive priority-based scheduling policies.

use crate::graph::{TaskGraph, TaskId};
use crate::validate::topological_sort;

/// Result of a critical-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total weight along the heaviest path.
    pub length: f64,
    /// The task ids on that path, in execution order.
    pub path: Vec<TaskId>,
}

/// Compute the weighted critical path. Node weights are the task durations;
/// edges carry no weight (shared-memory model).
///
/// Panics if the graph is cyclic.
pub fn critical_path(g: &TaskGraph) -> CriticalPath {
    if g.is_empty() {
        return CriticalPath {
            length: 0.0,
            path: vec![],
        };
    }
    let order = topological_sort(g).expect("critical path requires a DAG");
    // dist[t] = heaviest path weight ending at t (inclusive).
    let mut dist = vec![0.0f64; g.len()];
    let mut parent = vec![usize::MAX; g.len()];
    for &u in &order {
        let base = g
            .predecessors(u)
            .iter()
            .map(|&p| dist[p])
            .fold(0.0f64, f64::max);
        if let Some(&best_p) = g
            .predecessors(u)
            .iter()
            .max_by(|&&a, &&b| dist[a].total_cmp(&dist[b]))
        {
            if dist[best_p] == base && !g.predecessors(u).is_empty() {
                parent[u] = best_p;
            }
        }
        dist[u] = base + g.node(u).weight;
    }
    let end = (0..g.len())
        .max_by(|&a, &b| dist[a].total_cmp(&dist[b]))
        .expect("non-empty graph");
    let mut path = vec![end];
    let mut cur = end;
    while parent[cur] != usize::MAX {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    CriticalPath {
        length: dist[end],
        path,
    }
}

/// Bottom level of each task: the heaviest path weight from the task
/// (inclusive) to any sink. Classic list-scheduling priority.
pub fn bottom_levels(g: &TaskGraph) -> Vec<f64> {
    let order = topological_sort(g).expect("bottom levels require a DAG");
    let mut bl = vec![0.0f64; g.len()];
    for &u in order.iter().rev() {
        let down = g
            .successors(u)
            .iter()
            .map(|&s| bl[s])
            .fold(0.0f64, f64::max);
        bl[u] = g.node(u).weight + down;
    }
    bl
}

/// Top level of each task: the heaviest path weight from any source to the
/// task (exclusive) — i.e. the earliest possible start on infinitely many
/// workers.
pub fn top_levels(g: &TaskGraph) -> Vec<f64> {
    let order = topological_sort(g).expect("top levels require a DAG");
    let mut tl = vec![0.0f64; g.len()];
    for &u in &order {
        let up = g
            .predecessors(u)
            .iter()
            .map(|&p| tl[p] + g.node(p).weight)
            .fold(0.0f64, f64::max);
        tl[u] = up;
    }
    tl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskNode;

    fn node(w: f64) -> TaskNode {
        TaskNode {
            label: "t".into(),
            weight: w,
            accesses: vec![],
        }
    }

    fn weighted_diamond() -> TaskGraph {
        // 0(1) -> 1(5) -> 3(1); 0(1) -> 2(2) -> 3(1)
        let mut g = TaskGraph::new();
        g.add_node(node(1.0));
        g.add_node(node(5.0));
        g.add_node(node(2.0));
        g.add_node(node(1.0));
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn critical_path_picks_heavy_branch() {
        let cp = critical_path(&weighted_diamond());
        assert!((cp.length - 7.0).abs() < 1e-12);
        assert_eq!(cp.path, vec![0, 1, 3]);
    }

    #[test]
    fn empty_graph_zero_path() {
        let cp = critical_path(&TaskGraph::new());
        assert_eq!(cp.length, 0.0);
        assert!(cp.path.is_empty());
    }

    #[test]
    fn chain_path_is_total_weight() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_node(node(i as f64 + 1.0));
        }
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        let cp = critical_path(&g);
        assert!((cp.length - 15.0).abs() < 1e-12);
        assert_eq!(cp.path, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn independent_tasks_path_is_max_weight() {
        let mut g = TaskGraph::new();
        g.add_node(node(3.0));
        g.add_node(node(7.0));
        let cp = critical_path(&g);
        assert!((cp.length - 7.0).abs() < 1e-12);
        assert_eq!(cp.path, vec![1]);
    }

    #[test]
    fn bottom_levels_diamond() {
        let bl = bottom_levels(&weighted_diamond());
        assert!((bl[3] - 1.0).abs() < 1e-12);
        assert!((bl[1] - 6.0).abs() < 1e-12);
        assert!((bl[2] - 3.0).abs() < 1e-12);
        assert!((bl[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn top_levels_diamond() {
        let tl = top_levels(&weighted_diamond());
        assert_eq!(tl[0], 0.0);
        assert!((tl[1] - 1.0).abs() < 1e-12);
        assert!((tl[2] - 1.0).abs() < 1e-12);
        assert!((tl[3] - 6.0).abs() < 1e-12); // via heavy branch
    }

    #[test]
    fn levels_are_consistent_with_critical_path() {
        let g = weighted_diamond();
        let cp = critical_path(&g);
        let bl = bottom_levels(&g);
        let tl = top_levels(&g);
        // For every task on the critical path, tl + bl == cp length.
        for &t in &cp.path {
            assert!((tl[t] + bl[t] - cp.length).abs() < 1e-12);
        }
        // For all tasks, tl + bl <= cp length.
        for t in 0..g.len() {
            assert!(tl[t] + bl[t] <= cp.length + 1e-12);
        }
    }
}
