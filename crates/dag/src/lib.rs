//! # supersim-dag
//!
//! Task DAGs for superscalar scheduling.
//!
//! In the superscalar paradigm (paper §IV-A) the developer submits tasks
//! serially, each annotated with the data it reads and writes. The scheduler
//! analyzes Read-after-Write (RaW), Write-after-Read (WaR), and
//! Write-after-Write (WaW) hazards over those annotations; the resulting
//! dependences form a Directed Acyclic Graph whose vertices are tasks and
//! whose edges connect a task's output to another task's input (Fig. 1
//! shows the DAG of a 4×4-tile QR factorization).
//!
//! This crate provides the graph model and the hazard analysis:
//!
//! * [`access`] — data handles and read/write access annotations;
//! * [`graph`] — the task-graph structure with edge multiplicity (Fig. 1's
//!   multi-edges: "more than one data dependence" between two tasks);
//! * [`build`] — superscalar hazard analysis from a serial task stream;
//! * [`renaming`] — anti-dependence elimination by data renaming (what
//!   schedulers that copy data to break WaR/WaW effectively do);
//! * [`dot`] — Graphviz export (regenerates Fig. 1);
//! * [`critical_path`] — weighted longest path and bottom-levels;
//! * [`analysis`] — depth/width/parallelism profiles;
//! * [`validate`] — topological sorting and schedule validation.

pub mod access;
pub mod analysis;
pub mod build;
pub mod critical_path;
pub mod dot;
pub mod graph;
#[cfg(test)]
mod proptests;
pub mod renaming;
pub mod validate;

pub use access::{normalize_accesses, Access, AccessMode, DataId};
pub use build::DagBuilder;
pub use graph::{TaskGraph, TaskId, TaskNode};
