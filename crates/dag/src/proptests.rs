//! Property-based tests for the DAG layer.

#![cfg(test)]

use crate::access::{Access, AccessMode, DataId};
use crate::analysis::profile;
use crate::build::DagBuilder;
use crate::critical_path::{bottom_levels, critical_path, top_levels};
use crate::renaming::build_renamed;
use crate::validate::{is_acyclic, topological_sort};
use proptest::prelude::*;

fn access_strategy() -> impl Strategy<Value = Access> {
    (0u64..8, 0u8..3).prop_map(|(d, m)| Access {
        data: DataId(d),
        mode: match m {
            0 => AccessMode::Read,
            1 => AccessMode::Write,
            _ => AccessMode::ReadWrite,
        },
        bytes: 0,
    })
}

fn stream_strategy() -> impl Strategy<Value = Vec<Vec<Access>>> {
    prop::collection::vec(prop::collection::vec(access_strategy(), 1..4), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hazard analysis always yields an acyclic, forward-edged graph.
    #[test]
    fn built_graphs_are_acyclic(stream in stream_strategy()) {
        let mut b = DagBuilder::new();
        for (i, acc) in stream.iter().enumerate() {
            b.submit(&format!("t{i}"), 1.0, acc);
        }
        let g = b.finish();
        prop_assert!(is_acyclic(&g));
        for (f, t, m) in g.edges() {
            prop_assert!(f < t, "backward edge {f}->{t}");
            prop_assert!(m >= 1);
        }
        // Topological sort covers everything exactly once.
        let order = topological_sort(&g).unwrap();
        prop_assert_eq!(order.len(), g.len());
    }

    /// Every conflicting pair is ordered in the transitive closure.
    #[test]
    fn conflicts_always_ordered(stream in stream_strategy()) {
        let norm: Vec<Vec<Access>> =
            stream.iter().map(|a| crate::access::normalize_accesses(a)).collect();
        let mut b = DagBuilder::new();
        for (i, acc) in norm.iter().enumerate() {
            b.submit(&format!("t{i}"), 1.0, acc);
        }
        let g = b.finish();
        let n = g.len();
        let mut reach = vec![vec![false; n]; n];
        for s in (0..n).rev() {
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for &v in g.successors(u) {
                    if !reach[s][v] {
                        reach[s][v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let conflict = norm[i].iter().any(|a| {
                    norm[j].iter().any(|c| a.data == c.data && a.mode.conflicts_with(c.mode))
                });
                if conflict {
                    prop_assert!(reach[i][j], "conflict ({i},{j}) unordered");
                }
            }
        }
    }

    /// Renaming never adds orderings and removes all WaR/WaW-only edges.
    #[test]
    fn renaming_subset_of_plain(stream in stream_strategy()) {
        let mut plain = DagBuilder::new();
        for (i, acc) in stream.iter().enumerate() {
            plain.submit(&format!("t{i}"), 1.0, acc);
        }
        let plain = plain.finish();
        let renamed = build_renamed(stream.iter().map(|acc| ("t", 1.0, acc.clone())));
        prop_assert!(renamed.edge_count() <= plain.edge_count());
        prop_assert!(is_acyclic(&renamed));
        for (f, t, _) in renamed.edges() {
            prop_assert!(plain.edge_multiplicity(f, t) > 0, "renaming invented {f}->{t}");
        }
    }

    /// Critical path is bounded by total work and is at least the heaviest
    /// single node; average parallelism is at least 1 for non-empty DAGs.
    #[test]
    fn critical_path_bounds(stream in stream_strategy(), weights in prop::collection::vec(0.01f64..10.0, 40)) {
        let mut b = DagBuilder::new();
        for (i, acc) in stream.iter().enumerate() {
            b.submit(&format!("t{i}"), weights[i % weights.len()], acc);
        }
        let g = b.finish();
        let cp = critical_path(&g);
        let total = g.total_weight();
        let heaviest = (0..g.len()).map(|i| g.node(i).weight).fold(0.0f64, f64::max);
        prop_assert!(cp.length <= total + 1e-9);
        prop_assert!(cp.length >= heaviest - 1e-9);
        let p = profile(&g);
        prop_assert!(p.avg_parallelism >= 1.0 - 1e-9);
        prop_assert!(p.depth <= g.len());
        prop_assert_eq!(p.width_profile.iter().sum::<usize>(), g.len());
    }

    /// Top+bottom level of any node never exceeds the critical path; the
    /// path reported actually achieves the reported length.
    #[test]
    fn levels_consistent(stream in stream_strategy()) {
        let mut b = DagBuilder::new();
        for (i, acc) in stream.iter().enumerate() {
            b.submit(&format!("t{i}"), 1.0 + (i % 3) as f64, acc);
        }
        let g = b.finish();
        let cp = critical_path(&g);
        let tl = top_levels(&g);
        let bl = bottom_levels(&g);
        for t in 0..g.len() {
            prop_assert!(tl[t] + bl[t] <= cp.length + 1e-9);
        }
        let path_weight: f64 = cp.path.iter().map(|&t| g.node(t).weight).sum();
        prop_assert!((path_weight - cp.length).abs() < 1e-9);
        // Path is actually a chain in the graph.
        for pair in cp.path.windows(2) {
            prop_assert!(g.edge_multiplicity(pair[0], pair[1]) > 0);
        }
    }

    /// DOT export mentions every node exactly once.
    #[test]
    fn dot_mentions_all_nodes(stream in stream_strategy()) {
        let mut b = DagBuilder::new();
        for (i, acc) in stream.iter().enumerate() {
            b.submit(&format!("t{i}"), 1.0, acc);
        }
        let g = b.finish();
        let dot = crate::dot::to_dot_default(&g);
        for i in 0..g.len() {
            prop_assert!(dot.contains(&format!("t{i} [label=")), "missing node {i}");
        }
    }
}
