//! Data handles and access-mode annotations.
//!
//! Every task names the data regions it touches and how: read, write, or
//! read-write. In the paper's pseudo-code (Fig. 2) these appear as the
//! `r`/`w`/`rw` superscripts on the tile arguments.

use serde::{Deserialize, Serialize};

/// Opaque identity of a data region (e.g. one matrix tile).
///
/// In a C runtime this would be the data's base address; here it is an
/// abstract id handed out by whoever owns the data (the tile layout, the
/// runtime's handle registry, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataId(pub u64);

/// How a task accesses one data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Input only.
    Read,
    /// Output only.
    Write,
    /// Input and output.
    ReadWrite,
}

impl AccessMode {
    /// Whether the access reads the data.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the access writes the data.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Whether two accesses to the same data conflict (at least one write).
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        self.writes() || other.writes()
    }
}

/// One data access of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Which data region.
    pub data: DataId,
    /// How it is accessed.
    pub mode: AccessMode,
    /// Size of the region in bytes (0 = unknown). Edges that cross a data
    /// distribution use this to cost the transfer; single-node scheduling
    /// ignores it.
    #[serde(default)]
    pub bytes: u64,
}

impl Access {
    /// Read access to `data`.
    pub fn read(data: DataId) -> Self {
        Access {
            data,
            mode: AccessMode::Read,
            bytes: 0,
        }
    }

    /// Write access to `data`.
    pub fn write(data: DataId) -> Self {
        Access {
            data,
            mode: AccessMode::Write,
            bytes: 0,
        }
    }

    /// Read-write access to `data`.
    pub fn read_write(data: DataId) -> Self {
        Access {
            data,
            mode: AccessMode::ReadWrite,
            bytes: 0,
        }
    }

    /// Annotate the access with the region's size in bytes.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }
}

/// Normalize an access list: merge duplicate regions, upgrading the mode if
/// a region appears with multiple modes (read + write → read-write).
///
/// Schedulers require each data argument to appear once; workload
/// generators may produce duplicates (e.g. a kernel using one tile as two
/// arguments), so this is applied at submission.
pub fn normalize_accesses(accesses: &[Access]) -> Vec<Access> {
    let mut out: Vec<Access> = Vec::with_capacity(accesses.len());
    for &a in accesses {
        if let Some(existing) = out.iter_mut().find(|e| e.data == a.data) {
            existing.bytes = existing.bytes.max(a.bytes);
            existing.mode = match (
                existing.mode.reads() || a.mode.reads(),
                existing.mode.writes() || a.mode.writes(),
            ) {
                (true, true) => AccessMode::ReadWrite,
                (true, false) => AccessMode::Read,
                (false, true) => AccessMode::Write,
                (false, false) => unreachable!("access must read or write"),
            };
        } else {
            out.push(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Read.reads());
        assert!(!AccessMode::Read.writes());
        assert!(AccessMode::Write.writes());
        assert!(!AccessMode::Write.reads());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }

    #[test]
    fn conflict_rules() {
        use AccessMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
        assert!(ReadWrite.conflicts_with(Read));
    }

    #[test]
    fn constructors() {
        let d = DataId(3);
        assert_eq!(Access::read(d).mode, AccessMode::Read);
        assert_eq!(Access::write(d).mode, AccessMode::Write);
        assert_eq!(Access::read_write(d).mode, AccessMode::ReadWrite);
    }

    #[test]
    fn normalize_merges_duplicates() {
        let d = DataId(1);
        let e = DataId(2);
        let norm = normalize_accesses(&[Access::read(d), Access::write(d), Access::read(e)]);
        assert_eq!(norm.len(), 2);
        assert_eq!(norm[0].data, d);
        assert_eq!(norm[0].mode, AccessMode::ReadWrite);
        assert_eq!(norm[1], Access::read(e));
    }

    #[test]
    fn bytes_ride_along_and_merge_by_max() {
        let d = DataId(1);
        assert_eq!(Access::read(d).bytes, 0);
        assert_eq!(Access::read(d).with_bytes(4096).bytes, 4096);
        let norm = normalize_accesses(&[
            Access::read(d).with_bytes(100),
            Access::write(d).with_bytes(300),
        ]);
        assert_eq!(norm.len(), 1);
        assert_eq!(norm[0].mode, AccessMode::ReadWrite);
        assert_eq!(norm[0].bytes, 300);
    }

    #[test]
    fn normalize_keeps_single_mode() {
        let d = DataId(1);
        let norm = normalize_accesses(&[Access::read(d), Access::read(d)]);
        assert_eq!(norm, vec![Access::read(d)]);
        let norm = normalize_accesses(&[Access::write(d), Access::write(d)]);
        assert_eq!(norm, vec![Access::write(d)]);
    }
}
