//! The task-graph structure.

use crate::access::Access;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a task within a [`TaskGraph`] (submission order).
pub type TaskId = usize;

/// One vertex of the task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Kernel-class label, e.g. `"geqrt"`.
    pub label: String,
    /// Expected duration (seconds); used as the weight for critical-path
    /// analysis and by the offline DES baseline. Zero if unknown.
    pub weight: f64,
    /// The task's data accesses (normalized: each region at most once).
    pub accesses: Vec<Access>,
}

/// A directed acyclic task graph with edge multiplicities.
///
/// Nodes are stored in submission order; edges always point from an earlier
/// task to a later one (guaranteed by the superscalar construction in
/// [`crate::build`]), so graphs built there are acyclic by construction.
/// Edge *multiplicity* counts how many distinct data dependences connect
/// the same task pair — Fig. 1 of the paper draws these as parallel edges.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    succ: Vec<Vec<TaskId>>,
    pred: Vec<Vec<TaskId>>,
    /// Multiplicity per (from, to) pair.
    #[serde(with = "edge_map_serde")]
    multiplicity: BTreeMap<(TaskId, TaskId), u32>,
}

/// JSON map keys must be strings, so the multiplicity map round-trips as a
/// list of `(from, to, multiplicity)` triples.
mod edge_map_serde {
    use super::TaskId;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(TaskId, TaskId), u32>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let v: Vec<(TaskId, TaskId, u32)> = map.iter().map(|(&(f, t), &m)| (f, t, m)).collect();
        v.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<(TaskId, TaskId), u32>, D::Error> {
        let v: Vec<(TaskId, TaskId, u32)> = Vec::deserialize(de)?;
        Ok(v.into_iter().map(|(f, t, m)| ((f, t), m)).collect())
    }
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its id (submission order).
    pub fn add_node(&mut self, node: TaskNode) -> TaskId {
        self.nodes.push(node);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Add a dependence edge `from -> to`. Repeated edges raise the
    /// multiplicity but appear once in the adjacency lists.
    ///
    /// Panics if either id is out of range or `from == to`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "edge endpoint out of range"
        );
        assert_ne!(from, to, "self-dependence is not a hazard");
        let m = self.multiplicity.entry((from, to)).or_insert(0);
        *m += 1;
        if *m == 1 {
            self.succ[from].push(to);
            self.pred[to].push(from);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct edges (ignoring multiplicity).
    pub fn edge_count(&self) -> usize {
        self.multiplicity.len()
    }

    /// Total dependence count (sum of multiplicities).
    pub fn dependence_count(&self) -> u64 {
        self.multiplicity.values().map(|&m| m as u64).sum()
    }

    /// The node with id `id`.
    pub fn node(&self, id: TaskId) -> &TaskNode {
        &self.nodes[id]
    }

    /// Mutable access to a node (e.g. to set weights post-construction).
    pub fn node_mut(&mut self, id: TaskId) -> &mut TaskNode {
        &mut self.nodes[id]
    }

    /// All nodes in submission order.
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// Distinct successors of `id`.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succ[id]
    }

    /// Distinct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.pred[id]
    }

    /// Multiplicity of the edge `from -> to` (0 if absent).
    pub fn edge_multiplicity(&self, from: TaskId, to: TaskId) -> u32 {
        self.multiplicity.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Iterate `(from, to, multiplicity)` in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId, u32)> + '_ {
        self.multiplicity.iter().map(|(&(f, t), &m)| (f, t, m))
    }

    /// Ids of tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.pred[i].is_empty())
            .collect()
    }

    /// Ids of tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.succ[i].is_empty())
            .collect()
    }

    /// Sum of all node weights (total work).
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(label: &str) -> TaskNode {
        TaskNode {
            label: label.into(),
            weight: 1.0,
            accesses: vec![],
        }
    }

    #[test]
    fn build_basic_graph() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        let b = g.add_node(node("b"));
        let c = g.add_node(node("c"));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(c), &[a, b]);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
    }

    #[test]
    fn multiplicity_counts_parallel_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        let b = g.add_node(node("b"));
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_multiplicity(a, b), 3);
        assert_eq!(g.dependence_count(), 3);
        assert_eq!(g.successors(a).len(), 1);
    }

    #[test]
    #[should_panic(expected = "self-dependence")]
    fn self_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        g.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        g.add_edge(a, 5);
    }

    #[test]
    fn total_weight_sums() {
        let mut g = TaskGraph::new();
        g.add_node(TaskNode {
            label: "x".into(),
            weight: 2.0,
            accesses: vec![],
        });
        g.add_node(TaskNode {
            label: "y".into(),
            weight: 3.5,
            accesses: vec![],
        });
        assert!((g.total_weight() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_deterministic() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        let b = g.add_node(node("b"));
        let c = g.add_node(node("c"));
        g.add_edge(b, c);
        g.add_edge(a, b);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(a, b, 1), (b, c, 1)]);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = TaskGraph::new();
        let a = g.add_node(node("a"));
        let b = g.add_node(node("b"));
        g.add_edge(a, b);
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
