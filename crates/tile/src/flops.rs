//! Floating-point operation counts.
//!
//! Whole-algorithm counts follow the standard LAPACK conventions so the
//! GFLOP/s figures are comparable with published numbers (the paper's
//! Figs. 8–10 report GFLOP/s for the same algorithms). Per-kernel counts
//! are used as DES weights and for sanity checks.

/// Flops of a Cholesky factorization of an `n x n` matrix:
/// `n^3/3 + n^2/2 + n/6`.
pub fn cholesky(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + n * n / 2.0 + n / 6.0
}

/// Flops of a QR factorization of an `m x n` matrix (`m >= n`),
/// LAPACK convention: `2 n^2 (m - n/3) + n^2 + 14/3 n`.
pub fn qr(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * n * n * (m - n / 3.0) + n * n + 14.0 / 3.0 * n
}

/// Flops of an LU factorization of an `n x n` matrix:
/// `2 n^3 / 3 - n^2 / 2 + 5 n / 6`.
pub fn lu(n: usize) -> f64 {
    let n = n as f64;
    2.0 * n * n * n / 3.0 - n * n / 2.0 + 5.0 * n / 6.0
}

/// Flops of `C (m x n) += A (m x k) * B (k x n)`: `2 m n k`.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops of a SYRK updating an `n x n` triangle with rank `k`: `n (n+1) k`.
pub fn syrk(n: usize, k: usize) -> f64 {
    (n * (n + 1) * k) as f64
}

/// Flops of a TRSM with an `n x n` factor and `m` right-hand sides
/// (either side): `n^2 m`.
pub fn trsm(n: usize, m: usize) -> f64 {
    (n * n * m) as f64
}

/// Flops of an unblocked Cholesky of one `n x n` tile.
pub fn potrf_tile(n: usize) -> f64 {
    cholesky(n)
}

/// Approximate flops of `dgeqrt` on an `n x n` tile (QR + T build):
/// `(4/3) n^3` for the factorization plus `~(2/3) n^3` for `T`.
pub fn geqrt_tile(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Approximate flops of `dormqr` applying an `n x n` reflector block to an
/// `n x n` tile: `~3 n^3` (three GEMM-shaped products).
pub fn ormqr_tile(n: usize) -> f64 {
    3.0 * (n as f64).powi(3)
}

/// Approximate flops of `dtsqrt` on a `2n x n` stack: `~2 n^3`.
pub fn tsqrt_tile(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Approximate flops of `dtsmqr` on a `2n x n` stacked pair: `~4 n^3`
/// (dominant kernel of the tile QR).
pub fn tsmqr_tile(n: usize) -> f64 {
    4.0 * (n as f64).powi(3)
}

/// GFLOP/s given a flop count and elapsed seconds (0 if time is not
/// positive).
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        flops / seconds / 1e9
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_leading_term() {
        let n = 1000;
        let f = cholesky(n);
        let lead = (n as f64).powi(3) / 3.0;
        assert!((f - lead) / lead < 0.01);
    }

    #[test]
    fn qr_square_is_four_thirds_cubed() {
        let n = 1000;
        let f = qr(n, n);
        let lead = 4.0 / 3.0 * (n as f64).powi(3);
        assert!((f - lead).abs() / lead < 0.01);
    }

    #[test]
    fn lu_leading_term() {
        let n = 500;
        let lead = 2.0 / 3.0 * (n as f64).powi(3);
        assert!((lu(n) - lead).abs() / lead < 0.01);
    }

    #[test]
    fn kernel_counts_scale_cubically() {
        assert_eq!(gemm(10, 10, 10), 2000.0);
        assert!(tsmqr_tile(100) > ormqr_tile(100));
        assert!(geqrt_tile(100) > 0.0);
        assert!(syrk(10, 10) > 0.0);
        assert!(trsm(10, 20) == 2000.0);
        assert!(potrf_tile(10) > 0.0);
        assert!(tsqrt_tile(10) > 0.0);
    }

    #[test]
    fn tile_kernel_sums_approximate_algorithm_totals() {
        // Summing per-kernel approximations over the tile Cholesky stream
        // should land within ~20% of the algorithm total (the approximation
        // ignores triangular corrections).
        let nt = 8;
        let nb = 50;
        let n = nt * nb;
        let mut total = 0.0;
        for task in crate::cholesky::task_stream(nt) {
            total += match task {
                crate::cholesky::CholeskyTask::Potrf { .. } => potrf_tile(nb),
                crate::cholesky::CholeskyTask::Trsm { .. } => trsm(nb, nb),
                crate::cholesky::CholeskyTask::Syrk { .. } => syrk(nb, nb),
                crate::cholesky::CholeskyTask::Gemm { .. } => gemm(nb, nb, nb),
            };
        }
        let exact = cholesky(n);
        let ratio = total / exact;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gflops_conversion() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1e9, 0.0), 0.0);
        assert_eq!(gflops(1e9, 2.0), 0.5);
    }
}
