//! Numerical verification: factorization residuals and orthogonality.
//!
//! These are the standard LAPACK-style scaled residuals; every workload in
//! the benches asserts them after a "real" run to prove the scheduled
//! execution computed the right answer.

use crate::blas::{dgemm, Trans};
use crate::matrix::Matrix;
use crate::norms::frobenius;
use crate::qr::{apply_q, extract_r};
use crate::qr_kernels::ApplyTrans;
use crate::tiled::TiledMatrix;

/// Scaled Cholesky residual `||A - L L^T||_F / (n * ||A||_F)` where `L` is
/// the lower triangle of the factored tiled matrix.
pub fn cholesky_residual(a0: &Matrix, factored: &TiledMatrix) -> f64 {
    let n = a0.rows();
    let full = factored.to_matrix();
    let l = Matrix::from_fn(n, n, |i, j| if i >= j { full[(i, j)] } else { 0.0 });
    let mut recon = Matrix::zeros(n, n);
    dgemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
    frobenius(&recon.sub(a0)) / (n as f64 * frobenius(a0))
}

/// Scaled QR residual `||A - Q R||_F / (n * ||A||_F)` for a tile QR
/// factorization (`a` holds V+R, `ts` the T factors).
pub fn qr_residual(a0: &Matrix, a: &TiledMatrix, ts: &TiledMatrix) -> f64 {
    let n = a0.rows();
    let r = extract_r(a);
    let mut qr_tiled = TiledMatrix::from_matrix(&r, a.nb());
    apply_q(a, ts, ApplyTrans::No, &mut qr_tiled);
    let qr = qr_tiled.to_matrix();
    frobenius(&qr.sub(a0)) / (n as f64 * frobenius(a0))
}

/// Orthogonality defect `||Q^T Q - I||_F / n` for a tile QR factorization.
pub fn qr_orthogonality(a: &TiledMatrix, ts: &TiledMatrix) -> f64 {
    let n = a.rows();
    let eye = Matrix::identity(n);
    let mut q_tiled = TiledMatrix::from_matrix(&eye, a.nb());
    apply_q(a, ts, ApplyTrans::No, &mut q_tiled);
    let q = q_tiled.to_matrix();
    let mut defect = Matrix::identity(n);
    dgemm(Trans::Yes, Trans::No, 1.0, &q, &q, -1.0, &mut defect);
    frobenius(&defect) / n as f64
}

/// Scaled LU residual `||A - L U||_F / (n * ||A||_F)` where the factored
/// tiled matrix holds unit-lower `L` below the diagonal and `U` on/above.
pub fn lu_residual(a0: &Matrix, factored: &TiledMatrix) -> f64 {
    let n = a0.rows();
    let full = factored.to_matrix();
    let l = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            full[(i, j)]
        } else {
            0.0
        }
    });
    let u = Matrix::from_fn(n, n, |i, j| if i <= j { full[(i, j)] } else { 0.0 });
    let mut recon = Matrix::zeros(n, n);
    dgemm(Trans::No, Trans::No, 1.0, &l, &u, 0.0, &mut recon);
    frobenius(&recon.sub(a0)) / (n as f64 * frobenius(a0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random, spd};

    #[test]
    fn residual_zero_for_exact_factors() {
        // Hand-build A = L L^T from a known L, factor, residual ~ 0.
        let n = 12;
        let a0 = spd(n, 101);
        let mut t = TiledMatrix::from_matrix(&a0, 4);
        crate::cholesky::factor(&mut t).unwrap();
        assert!(cholesky_residual(&a0, &t) < 1e-14);
    }

    #[test]
    fn residual_large_for_wrong_factors() {
        let n = 8;
        let a0 = spd(n, 102);
        // "Factor" = unrelated junk.
        let junk = TiledMatrix::from_matrix(&random(n, n, 103), 4);
        assert!(cholesky_residual(&a0, &junk) > 1e-3);
    }

    #[test]
    fn qr_residual_detects_corruption() {
        let n = 12;
        let a0 = random(n, n, 104);
        let mut a = TiledMatrix::from_matrix(&a0, 4);
        let ts = crate::qr::factor(&mut a);
        assert!(qr_residual(&a0, &a, &ts) < 1e-13);
        // Corrupt one R entry; the residual must jump.
        a.tile_mut(0, 1)[(0, 0)] += 1.0;
        assert!(qr_residual(&a0, &a, &ts) > 1e-6);
    }

    #[test]
    fn lu_residual_identity() {
        // A = I factors as L = I, U = I; residual 0 without running LU.
        let n = 6;
        let a0 = Matrix::identity(n);
        let t = TiledMatrix::from_matrix(&a0, 3);
        assert!(lu_residual(&a0, &t) < 1e-15);
    }
}
