//! Tile QR factorization (paper Algorithm 2), sequential driver.
//!
//! As with Cholesky, the task stream defined here is the single source of
//! truth shared with the workload generator; the paper's Fig. 2 lists this
//! exact sequence (F0..F13 for a 3x3-tile matrix).

use crate::matrix::Matrix;
use crate::qr_kernels::{dgeqrt, dormqr, dtsmqr, dtsqrt, ApplyTrans};
use crate::tiled::TiledMatrix;

/// One kernel invocation of the tile QR algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QrTask {
    /// `DGEQRT(A[k][k], T[k][k])`.
    Geqrt { k: usize },
    /// `DORMQR(A[k][k], T[k][k], A[k][n])` — apply `Q_kk^T` to the right.
    Ormqr { k: usize, n: usize },
    /// `DTSQRT(A[k][k], A[m][k], T[m][k])`.
    Tsqrt { k: usize, m: usize },
    /// `DTSMQR(A[k][n], A[m][n], A[m][k], T[m][k])`.
    Tsmqr { k: usize, m: usize, n: usize },
}

impl QrTask {
    /// Kernel-class label used in traces and models.
    pub fn label(&self) -> &'static str {
        match self {
            QrTask::Geqrt { .. } => "dgeqrt",
            QrTask::Ormqr { .. } => "dormqr",
            QrTask::Tsqrt { .. } => "dtsqrt",
            QrTask::Tsmqr { .. } => "dtsmqr",
        }
    }
}

/// The serial task stream of the tile QR of an `nt x nt` tile matrix
/// (Algorithm 2 / Fig. 2 of the paper).
pub fn task_stream(nt: usize) -> Vec<QrTask> {
    let mut tasks = Vec::new();
    for k in 0..nt {
        tasks.push(QrTask::Geqrt { k });
        for n in (k + 1)..nt {
            tasks.push(QrTask::Ormqr { k, n });
        }
        for m in (k + 1)..nt {
            tasks.push(QrTask::Tsqrt { k, m });
            for n in (k + 1)..nt {
                tasks.push(QrTask::Tsmqr { k, m, n });
            }
        }
    }
    tasks
}

/// Execute one QR task on the tiled matrix `a` and the T-factor store `ts`.
///
/// `ts` must have the same tile grid as `a`; `ts[k][k]` holds the `dgeqrt`
/// factor of step `k` and `ts[m][k]` (m > k) the `dtsqrt` factors.
pub fn execute_task(a: &mut TiledMatrix, ts: &mut TiledMatrix, task: QrTask) {
    match task {
        QrTask::Geqrt { k } => {
            // T tile must match the diagonal tile's column count.
            let nb = a.tile(k, k).cols();
            *ts.tile_mut(k, k) = Matrix::zeros(nb, nb);
            let (akk, tkk) = (a.tile_mut(k, k) as *mut Matrix, ts.tile_mut(k, k));
            // SAFETY: a and ts are distinct TiledMatrix objects.
            dgeqrt(unsafe { &mut *akk }, tkk);
        }
        QrTask::Ormqr { k, n } => {
            let v = a.tile(k, k).clone();
            let t = ts.tile(k, k).clone();
            dormqr(ApplyTrans::Trans, &v, &t, a.tile_mut(k, n));
        }
        QrTask::Tsqrt { k, m } => {
            let nb = a.tile(k, k).cols();
            *ts.tile_mut(m, k) = Matrix::zeros(nb, nb);
            // Need two tiles of `a` mutably: (k,k) and (m,k). They are
            // distinct because m > k.
            assert!(m != k);
            let r_ptr = a.tile_mut(k, k) as *mut Matrix;
            let b = a.tile_mut(m, k);
            // SAFETY: (k,k) and (m,k) are different tiles (m != k).
            dtsqrt(unsafe { &mut *r_ptr }, b, ts.tile_mut(m, k));
        }
        QrTask::Tsmqr { k, m, n } => {
            let u = a.tile(m, k).clone();
            let t = ts.tile(m, k).clone();
            assert!(m != k);
            let c1_ptr = a.tile_mut(k, n) as *mut Matrix;
            let c2 = a.tile_mut(m, n);
            // SAFETY: (k,n) and (m,n) are different tiles (m != k).
            dtsmqr(ApplyTrans::Trans, unsafe { &mut *c1_ptr }, c2, &u, &t);
        }
    }
}

/// Sequential tile QR. On return `a` holds `R` in its upper tiles plus the
/// Householder blocks, and `ts` the T factors. `a` must be square in tiles.
pub fn factor(a: &mut TiledMatrix) -> TiledMatrix {
    assert_eq!(a.mt(), a.nt(), "tile QR driver requires a square tile grid");
    let mut ts = TiledMatrix::zeros(a.rows(), a.cols(), a.nb());
    for task in task_stream(a.nt()) {
        execute_task(a, &mut ts, task);
    }
    ts
}

/// Apply `Q` (`trans == No`) or `Q^T` (`trans == Trans`) — as defined by a
/// factorization (`a`, `ts`) — to a tiled matrix `c` in place.
///
/// `Q^T` replays the factorization's transform sequence in order; `Q`
/// replays it in reverse with untransposed blocks. Used to rebuild `Q`
/// explicitly and to verify `A = Q R`.
pub fn apply_q(a: &TiledMatrix, ts: &TiledMatrix, trans: ApplyTrans, c: &mut TiledMatrix) {
    assert_eq!(a.mt(), c.mt(), "row tile grids must match");
    let nt = a.nt();
    let cn = c.nt();
    match trans {
        ApplyTrans::Trans => {
            for k in 0..nt {
                for n in 0..cn {
                    let v = a.tile(k, k);
                    let t = ts.tile(k, k);
                    dormqr(ApplyTrans::Trans, v, t, c.tile_mut(k, n));
                }
                for m in (k + 1)..nt {
                    let u = a.tile(m, k);
                    let t = ts.tile(m, k);
                    for n in 0..cn {
                        let c1_ptr = c.tile_mut(k, n) as *mut Matrix;
                        let c2 = c.tile_mut(m, n);
                        // SAFETY: distinct tiles (m > k).
                        dtsmqr(ApplyTrans::Trans, unsafe { &mut *c1_ptr }, c2, u, t);
                    }
                }
            }
        }
        ApplyTrans::No => {
            for k in (0..nt).rev() {
                for m in ((k + 1)..nt).rev() {
                    let u = a.tile(m, k);
                    let t = ts.tile(m, k);
                    for n in 0..cn {
                        let c1_ptr = c.tile_mut(k, n) as *mut Matrix;
                        let c2 = c.tile_mut(m, n);
                        // SAFETY: distinct tiles (m > k).
                        dtsmqr(ApplyTrans::No, unsafe { &mut *c1_ptr }, c2, u, t);
                    }
                }
                for n in 0..cn {
                    let v = a.tile(k, k);
                    let t = ts.tile(k, k);
                    dormqr(ApplyTrans::No, v, t, c.tile_mut(k, n));
                }
            }
        }
    }
}

/// Extract the upper-triangular `R` factor from a factored tiled matrix.
pub fn extract_r(a: &TiledMatrix) -> Matrix {
    let full = a.to_matrix();
    Matrix::from_fn(full.rows(), full.cols(), |i, j| {
        if i <= j {
            full[(i, j)]
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random;
    use crate::norms::frobenius;
    use crate::verify::{qr_orthogonality, qr_residual};

    #[test]
    fn task_stream_matches_paper_fig2() {
        // Fig. 2: 3x3 tiles = 14 tasks F0..F13 in this exact order.
        let stream = task_stream(3);
        let labels: Vec<&str> = stream.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            vec![
                "dgeqrt", "dormqr", "dormqr", // F0..F2
                "dtsqrt", "dtsmqr", "dtsmqr", // F3..F5
                "dtsqrt", "dtsmqr", "dtsmqr", // F6..F8
                "dgeqrt", "dormqr", // F9, F10
                "dtsqrt", "dtsmqr", // F11, F12
                "dgeqrt", // F13
            ]
        );
        assert_eq!(stream.len(), 14);
    }

    #[test]
    fn task_stream_count_formula() {
        // nt geqrt + nt(nt-1)/2 ormqr + nt(nt-1)/2 tsqrt + sum k (nt-k-1)^2 tsmqr.
        for nt in 1..7usize {
            let n = task_stream(nt).len();
            let tsmqr: usize = (0..nt).map(|k| (nt - k - 1) * (nt - k - 1)).sum();
            let expect = nt + nt * (nt - 1) / 2 * 2 + tsmqr;
            assert_eq!(n, expect, "nt={nt}");
        }
    }

    #[test]
    fn factorization_residual_small() {
        let n = 24;
        let a0 = random(n, n, 91);
        let mut a = TiledMatrix::from_matrix(&a0, 6);
        let ts = factor(&mut a);
        let res = qr_residual(&a0, &a, &ts);
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn q_is_orthogonal() {
        let n = 18;
        let a0 = random(n, n, 92);
        let mut a = TiledMatrix::from_matrix(&a0, 6);
        let ts = factor(&mut a);
        let orth = qr_orthogonality(&a, &ts);
        assert!(orth < 1e-12, "orthogonality defect {orth}");
    }

    #[test]
    fn single_tile_qr() {
        let a0 = random(8, 8, 93);
        let mut a = TiledMatrix::from_matrix(&a0, 16);
        let ts = factor(&mut a);
        assert!(qr_residual(&a0, &a, &ts) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular_with_nonzero_diagonal() {
        let n = 12;
        let a0 = random(n, n, 94);
        let mut a = TiledMatrix::from_matrix(&a0, 4);
        let ts = factor(&mut a);
        let _ = ts;
        let r = extract_r(&a);
        for i in 0..n {
            assert!(r[(i, i)].abs() > 1e-12, "R[{i},{i}] ~ 0");
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qt_q_round_trip_on_arbitrary_matrix() {
        let n = 12;
        let a0 = random(n, n, 95);
        let mut a = TiledMatrix::from_matrix(&a0, 4);
        let ts = factor(&mut a);
        let x0 = random(n, n, 96);
        let mut x = TiledMatrix::from_matrix(&x0, 4);
        apply_q(&a, &ts, ApplyTrans::Trans, &mut x);
        apply_q(&a, &ts, ApplyTrans::No, &mut x);
        let err = frobenius(&x.to_matrix().sub(&x0)) / frobenius(&x0);
        assert!(err < 1e-12, "round trip error {err}");
    }

    #[test]
    fn qr_with_edge_tiles() {
        // 22 = 3 tiles of 8 with a 6-wide edge: exercises rectangular paths.
        let n = 22;
        let a0 = random(n, n, 97);
        let mut a = TiledMatrix::from_matrix(&a0, 8);
        let ts = factor(&mut a);
        let res = qr_residual(&a0, &a, &ts);
        assert!(res < 1e-12, "residual {res}");
    }
}
