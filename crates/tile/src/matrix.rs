//! Column-major dense matrix.

/// A dense, column-major, double-precision matrix.
///
/// Column-major (LAPACK/BLAS convention) so the kernel loops have unit
/// stride along columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from column-major data. Panics if the length does not match.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw column-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One column as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// One column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Two distinct columns simultaneously (for column updates).
    ///
    /// Panics if `j1 == j2`.
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(j1, j2, "columns must differ");
        let r = self.rows;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (head, tail) = self.data.split_at_mut(hi * r);
        let a = &mut head[lo * r..(lo + 1) * r];
        let b = &mut tail[..r];
        if j1 < j2 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self * other` (naive, for tests and verification only — the fast
    /// path is [`crate::blas::dgemm`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        crate::blas::dgemm(
            crate::blas::Trans::No,
            crate::blas::Trans::No,
            1.0,
            self,
            other,
            0.0,
            &mut c,
        );
        c
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o -= b;
        }
        out
    }

    /// Copy a rectangular block of `src` into `self` at `(dst_i, dst_j)`.
    #[allow(clippy::too_many_arguments)] // mirrors the LAPACK lacpy signature
    pub fn copy_block(
        &mut self,
        src: &Matrix,
        src_i: usize,
        src_j: usize,
        rows: usize,
        cols: usize,
        dst_i: usize,
        dst_j: usize,
    ) {
        assert!(
            src_i + rows <= src.rows && src_j + cols <= src.cols,
            "src block out of range"
        );
        assert!(
            dst_i + rows <= self.rows && dst_j + cols <= self.cols,
            "dst block out of range"
        );
        for j in 0..cols {
            for i in 0..rows {
                self[(dst_i + i, dst_j + j)] = src[(src_i + i, src_j + j)];
            }
        }
    }

    /// Maximum absolute entry (0 for empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[j * self.rows + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0);
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_col_major(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let b = Matrix::from_col_major(2, 2, vec![5.0, 7.0, 6.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        let (c0, c2) = m.two_cols_mut(0, 2);
        c0[0] = -1.0;
        c2[1] = -2.0;
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(1, 2)], -2.0);
        // Reverse order works too.
        let (c2b, c0b) = m.two_cols_mut(2, 0);
        assert_eq!(c2b[1], -2.0);
        assert_eq!(c0b[0], -1.0);
    }

    #[test]
    fn copy_block_moves_submatrix() {
        let src = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut dst = Matrix::zeros(3, 3);
        dst.copy_block(&src, 1, 1, 2, 2, 0, 0);
        assert_eq!(dst[(0, 0)], src[(1, 1)]);
        assert_eq!(dst[(1, 1)], src[(2, 2)]);
        assert_eq!(dst[(2, 2)], 0.0);
    }

    #[test]
    fn sub_and_max_abs() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        let d = a.sub(&b);
        assert_eq!(d[(0, 0)], -1.0);
        assert_eq!(d.max_abs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_col_major_checks_length() {
        Matrix::from_col_major(2, 2, vec![1.0]);
    }
}
