//! Property-based tests for the linear-algebra substrate.

#![cfg(test)]

use crate::blas::{dgemm, dpotf2, dtrsm, Diag, Side, Trans, Uplo};
use crate::generate::{diag_dominant, random, spd_fast};
use crate::norms::frobenius;
use crate::qr_kernels::{dgeqrt, dormqr, ApplyTrans};
use crate::tiled::TiledMatrix;
use crate::verify::{cholesky_residual, lu_residual, qr_orthogonality, qr_residual};
use crate::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GEMM is linear in alpha: C(2a) - C(0) = 2 (C(a) - C(0)).
    #[test]
    fn gemm_linear_in_alpha(n in 1usize..12, seed in 0u64..500, alpha in -3.0f64..3.0) {
        let a = random(n, n, seed);
        let b = random(n, n, seed + 1);
        let c0 = random(n, n, seed + 2);
        let run = |al: f64| {
            let mut c = c0.clone();
            dgemm(Trans::No, Trans::No, al, &a, &b, 1.0, &mut c);
            c
        };
        let c1 = run(alpha);
        let c2 = run(2.0 * alpha);
        for j in 0..n {
            for i in 0..n {
                let d1 = c1[(i, j)] - c0[(i, j)];
                let d2 = c2[(i, j)] - c0[(i, j)];
                prop_assert!((d2 - 2.0 * d1).abs() < 1e-9 * (1.0 + d1.abs()));
            }
        }
    }

    /// (A B)^T == B^T A^T computed through the transpose arguments.
    #[test]
    fn gemm_transpose_identity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..500) {
        let a = random(m, k, seed);
        let b = random(k, n, seed + 9);
        let mut ab = Matrix::zeros(m, n);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut ab);
        // B^T A^T via transpose flags on the original operands.
        let mut btat = Matrix::zeros(n, m);
        dgemm(Trans::Yes, Trans::Yes, 1.0, &b, &a, 0.0, &mut btat);
        prop_assert!(frobenius(&btat.sub(&ab.transposed())) < 1e-10);
    }

    /// TRSM actually solves: op(A) * X == alpha * B for random triangles.
    #[test]
    fn trsm_solves(n in 1usize..10, nrhs in 1usize..6, seed in 0u64..300,
                   side_right in any::<bool>(), upper in any::<bool>(), trans in any::<bool>()) {
        let raw = random(n, n, seed);
        let uplo = if upper { Uplo::Upper } else { Uplo::Lower };
        let a = Matrix::from_fn(n, n, |i, j| {
            let keep = if upper { i <= j } else { i >= j };
            if i == j { 2.0 + raw[(i, j)].abs() } else if keep { 0.4 * raw[(i, j)] } else { 0.0 }
        });
        let side = if side_right { Side::Right } else { Side::Left };
        let tr = if trans { Trans::Yes } else { Trans::No };
        let b0 = match side {
            Side::Left => random(n, nrhs, seed + 4),
            Side::Right => random(nrhs, n, seed + 4),
        };
        let mut x = b0.clone();
        dtrsm(side, uplo, tr, Diag::NonUnit, 1.0, &a, &mut x);
        let opa = match tr { Trans::No => a.clone(), Trans::Yes => a.transposed() };
        let recon = match side {
            Side::Left => opa.matmul(&x),
            Side::Right => x.matmul(&opa),
        };
        let err = frobenius(&recon.sub(&b0)) / (1.0 + frobenius(&b0));
        prop_assert!(err < 1e-9, "residual {err}");
    }

    /// Cholesky of any fast-SPD matrix reconstructs, at any tile size.
    #[test]
    fn tile_cholesky_any_shape(n in 4usize..40, nb in 2usize..12, seed in 0u64..300) {
        let a0 = spd_fast(n, seed);
        let mut t = TiledMatrix::from_matrix(&a0, nb);
        crate::cholesky::factor(&mut t).unwrap();
        prop_assert!(cholesky_residual(&a0, &t) < 1e-11);
    }

    /// Tile QR of any random square matrix reconstructs and is orthogonal,
    /// including ragged edge tiles.
    #[test]
    fn tile_qr_any_shape(n in 4usize..32, nb in 2usize..10, seed in 0u64..300) {
        let a0 = random(n, n, seed);
        let mut a = TiledMatrix::from_matrix(&a0, nb);
        let ts = crate::qr::factor(&mut a);
        prop_assert!(qr_residual(&a0, &a, &ts) < 1e-10);
        prop_assert!(qr_orthogonality(&a, &ts) < 1e-10);
    }

    /// Tile LU of diagonally dominant matrices reconstructs.
    #[test]
    fn tile_lu_any_shape(n in 4usize..36, nb in 2usize..12, seed in 0u64..300) {
        let a0 = diag_dominant(n, seed);
        let mut t = TiledMatrix::from_matrix(&a0, nb);
        crate::lu::factor(&mut t).unwrap();
        prop_assert!(lu_residual(&a0, &t) < 1e-11);
    }

    /// dormqr applies an orthogonal transform: norms are preserved and
    /// Q^T Q x == x.
    #[test]
    fn ormqr_orthogonality(n in 2usize..12, seed in 0u64..300) {
        let mut v = random(n, n, seed);
        let mut t = Matrix::zeros(n, n);
        dgeqrt(&mut v, &mut t);
        let x0 = random(n, 3, seed + 7);
        let mut x = x0.clone();
        dormqr(ApplyTrans::Trans, &v, &t, &mut x);
        prop_assert!((frobenius(&x) - frobenius(&x0)).abs() < 1e-9);
        dormqr(ApplyTrans::No, &v, &t, &mut x);
        prop_assert!(frobenius(&x.sub(&x0)) < 1e-9);
    }

    /// Cholesky then reconstruct then Cholesky again is stable (L fixed
    /// point): factoring L L^T gives back L.
    #[test]
    fn cholesky_fixed_point(n in 2usize..16, seed in 0u64..300) {
        let a0 = spd_fast(n, seed);
        let mut f = a0.clone();
        dpotf2(&mut f).unwrap();
        let l = Matrix::from_fn(n, n, |i, j| if i >= j { f[(i, j)] } else { 0.0 });
        let mut llt = Matrix::zeros(n, n);
        dgemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut llt);
        let mut f2 = llt;
        dpotf2(&mut f2).unwrap();
        for j in 0..n {
            for i in j..n {
                prop_assert!((f2[(i, j)] - f[(i, j)]).abs() < 1e-8 * (1.0 + f[(i, j)].abs()));
            }
        }
    }

    /// Tiled round trip is exact for any shape/tile size.
    #[test]
    fn tiled_round_trip(r in 1usize..30, c in 1usize..30, nb in 1usize..12, seed in 0u64..200) {
        let a = random(r, c, seed);
        let t = TiledMatrix::from_matrix(&a, nb);
        prop_assert_eq!(t.to_matrix(), a);
    }
}
