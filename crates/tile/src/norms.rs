//! Matrix norms.

use crate::matrix::Matrix;

/// Frobenius norm.
pub fn frobenius(a: &Matrix) -> f64 {
    a.data().iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// One-norm (max absolute column sum).
pub fn one_norm(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm (max absolute row sum).
pub fn inf_norm(a: &Matrix) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, &v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Max-norm (largest absolute entry).
pub fn max_norm(a: &Matrix) -> f64 {
    a.max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Matrix {
        // [1 -2; 3 4]
        Matrix::from_col_major(2, 2, vec![1.0, 3.0, -2.0, 4.0])
    }

    #[test]
    fn frobenius_known() {
        assert!((frobenius(&m()) - 30.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn one_norm_is_col_sum() {
        assert_eq!(one_norm(&m()), 6.0);
    }

    #[test]
    fn inf_norm_is_row_sum() {
        assert_eq!(inf_norm(&m()), 7.0);
    }

    #[test]
    fn max_norm_known() {
        assert_eq!(max_norm(&m()), 4.0);
    }

    #[test]
    fn zero_matrix_all_norms_zero() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(frobenius(&z), 0.0);
        assert_eq!(one_norm(&z), 0.0);
        assert_eq!(inf_norm(&z), 0.0);
        assert_eq!(max_norm(&z), 0.0);
    }
}
