//! `DTSMQR`: apply the `Q` of a [`super::dtsqrt`] factorization to a pair
//! of stacked tiles — the dominant kernel of the tile QR factorization
//! (paper §IV-B2: "the dominant operation from the innermost loop ... a new
//! kernel operation called DTSMQR").
//!
//! With `Q = I - [I; U] T [I; U]^T`:
//!
//! ```text
//! op(Q) [C1]   [C1 - op(T)^? W]          W = C1 + U^T C2
//!       [C2] = [C2 - U op(T) W]
//! ```
//!
//! concretely: `W = C1 + U^T C2`, `W := op(T) W`, `C1 -= W`, `C2 -= U W`.

use super::ApplyTrans;
use crate::blas::{dgemm, Trans};
use crate::matrix::Matrix;

/// Apply `op(Q)` from a `dtsqrt` factorization to the stacked pair
/// `[c1; c2]` in place.
///
/// * `c1`: the `k x n` top tile (same row count as `T`'s order).
/// * `c2`: the `m x n` bottom tile.
/// * `u`: the `V2` block produced by `dtsqrt` (`m x k`, stored in the
///   factored `B` tile).
/// * `t`: the `k x k` factor from `dtsqrt`.
pub fn dtsmqr(trans: ApplyTrans, c1: &mut Matrix, c2: &mut Matrix, u: &Matrix, t: &Matrix) {
    let k = t.rows();
    assert_eq!(t.cols(), k, "T must be square");
    assert_eq!(c1.rows(), k, "C1 rows must match T order");
    assert_eq!(u.cols(), k, "U cols must match T order");
    let m = u.rows();
    assert_eq!(c2.rows(), m, "C2 rows must match U rows");
    let n = c1.cols();
    assert_eq!(c2.cols(), n, "C1/C2 column mismatch");

    // W = C1 + U^T C2.
    let mut w = c1.clone();
    dgemm(Trans::Yes, Trans::No, 1.0, u, c2, 1.0, &mut w);
    // W := op(T) W.
    let mut tw = Matrix::zeros(k, n);
    match trans {
        ApplyTrans::Trans => dgemm(Trans::Yes, Trans::No, 1.0, t, &w, 0.0, &mut tw),
        ApplyTrans::No => dgemm(Trans::No, Trans::No, 1.0, t, &w, 0.0, &mut tw),
    }
    // C1 -= W; C2 -= U W.
    for (c, &x) in c1.data_mut().iter_mut().zip(tw.data().iter()) {
        *c -= x;
    }
    dgemm(Trans::No, Trans::No, -1.0, u, &tw, 1.0, c2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random;
    use crate::norms::frobenius;
    use crate::qr_kernels::dtsqrt;

    fn factored(n: usize, m: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        // Produce a dtsqrt factorization (r, u, t).
        let raw = random(n, n, seed);
        let mut r = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + raw[(i, j)].abs()
            } else if i < j {
                raw[(i, j)]
            } else {
                0.0
            }
        });
        let mut b = random(m, n, seed + 1);
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);
        (r, b, t)
    }

    #[test]
    fn qt_then_q_round_trips() {
        let (_, u, t) = factored(4, 6, 51);
        let c1_0 = random(4, 3, 52);
        let c2_0 = random(6, 3, 53);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &u, &t);
        dtsmqr(ApplyTrans::No, &mut c1, &mut c2, &u, &t);
        assert!(frobenius(&c1.sub(&c1_0)) < 1e-12);
        assert!(frobenius(&c2.sub(&c2_0)) < 1e-12);
    }

    #[test]
    fn preserves_stacked_norm() {
        let (_, u, t) = factored(5, 5, 54);
        let c1_0 = random(5, 2, 55);
        let c2_0 = random(5, 2, 56);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &u, &t);
        let before = (frobenius(&c1_0).powi(2) + frobenius(&c2_0).powi(2)).sqrt();
        let after = (frobenius(&c1).powi(2) + frobenius(&c2).powi(2)).sqrt();
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
    }

    #[test]
    fn consistent_with_tsqrt_on_own_columns() {
        // Applying Q^T to the original stacked [upper(R0); B0] must zero
        // the bottom block and produce the stored R'.
        let n = 4;
        let m = 5;
        let raw = random(n, n, 57);
        let r0 = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + raw[(i, j)].abs()
            } else if i < j {
                raw[(i, j)]
            } else {
                0.0
            }
        });
        let b0 = random(m, n, 58);
        let mut r = r0.clone();
        let mut b = b0.clone();
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);

        let mut c1 = r0.clone();
        let mut c2 = b0.clone();
        dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &b, &t);
        // c1 must equal updated R (upper triangle), c2 must be ~0.
        for j in 0..n {
            for i in 0..=j {
                assert!(
                    (c1[(i, j)] - r[(i, j)]).abs() < 1e-12,
                    "R mismatch at ({i},{j}): {} vs {}",
                    c1[(i, j)],
                    r[(i, j)]
                );
            }
        }
        assert!(
            frobenius(&c2) < 1e-12,
            "bottom block not annihilated: {}",
            frobenius(&c2)
        );
    }

    #[test]
    fn rectangular_bottom_block() {
        let (_, u, t) = factored(3, 7, 59);
        let mut c1 = random(3, 4, 60);
        let mut c2 = random(7, 4, 61);
        let c1_0 = c1.clone();
        let c2_0 = c2.clone();
        dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &u, &t);
        dtsmqr(ApplyTrans::No, &mut c1, &mut c2, &u, &t);
        assert!(frobenius(&c1.sub(&c1_0)) < 1e-12);
        assert!(frobenius(&c2.sub(&c2_0)) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "C1 rows")]
    fn dimension_check() {
        let (_, u, t) = factored(3, 4, 62);
        let mut c1 = Matrix::zeros(2, 2);
        let mut c2 = Matrix::zeros(4, 2);
        dtsmqr(ApplyTrans::No, &mut c1, &mut c2, &u, &t);
    }
}
