//! `DTSQRT`: QR factorization of a triangular tile stacked on a square
//! tile — the "triangle on top of square" kernel of the tile QR algorithm
//! (Algorithm 2, line 7).
//!
//! Input is the current `R` (upper triangle of the diagonal tile, from a
//! previous `dgeqrt`/`dtsqrt`) stacked above a full tile `B`:
//!
//! ```text
//! [ R ]          [ R' ]
//! [ B ]  =  Q *  [ 0  ]
//! ```
//!
//! Because the top block is triangular, each Householder vector has the
//! structure `v_k = [e_k; u_k]` — a 1 in row `k` of the top block and a
//! dense column `u_k` in the bottom block. On return the upper triangle of
//! `r` holds the updated `R'`, `b` holds the `u` vectors (the `V2` block),
//! and `t` the block-reflector factor with `Q = I - [I;U] T [I;U]^T`.

use super::householder;
use crate::matrix::Matrix;

/// Factor `[R; B]` in place; fill `t` (`n x n`, overwritten).
///
/// Only the upper triangle of `r` is read and written — its strictly lower
/// part (which in the tile algorithm still holds `dgeqrt` reflectors) is
/// preserved.
pub fn dtsqrt(r: &mut Matrix, b: &mut Matrix, t: &mut Matrix) {
    let n = r.cols();
    assert_eq!(r.rows(), n, "R tile must be square");
    assert_eq!(b.cols(), n, "B must have the same column count as R");
    let m = b.rows();
    assert_eq!(t.rows(), n, "T must be n x n");
    assert_eq!(t.cols(), n, "T must be n x n");
    for v in t.data_mut() {
        *v = 0.0;
    }

    for k in 0..n {
        // Householder on [R[k,k]; B[:,k]].
        let alpha = r[(k, k)];
        let (beta, tau) = householder(alpha, b.col_mut(k));
        r[(k, k)] = beta;

        if tau != 0.0 {
            // Apply to trailing columns j > k:
            // w = R[k,j] + u_k^T B[:,j]; R[k,j] -= tau w; B[:,j] -= tau w u_k.
            for j in (k + 1)..n {
                let mut w = r[(k, j)];
                {
                    let (uk, bj) = b.two_cols_mut(k, j);
                    for i in 0..m {
                        w += uk[i] * bj[i];
                    }
                    let tw = tau * w;
                    for i in 0..m {
                        bj[i] -= tw * uk[i];
                    }
                }
                r[(k, j)] -= tau * w;
            }
        }

        // T[0..k, k] = -tau * T[0..k, 0..k] * (U[:, 0..k]^T u_k); the top
        // (identity) parts of the reflectors are orthogonal (e_i^T e_k = 0
        // for i < k) so only the dense bottom contributes.
        let mut z = vec![0.0f64; k];
        for (i, zi) in z.iter_mut().enumerate() {
            let ui = b.col(i);
            let uk = b.col(k);
            let mut acc = 0.0;
            for r_ in 0..m {
                acc += ui[r_] * uk[r_];
            }
            *zi = acc;
        }
        for i in 0..k {
            let mut acc = 0.0;
            for (l, zl) in z.iter().enumerate().skip(i) {
                acc += t[(i, l)] * zl;
            }
            t[(i, k)] = -tau * acc;
        }
        t[(k, k)] = tau;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{dgemm, Trans};
    use crate::generate::random;
    use crate::norms::frobenius;

    /// Build the stacked Q = I - [I;U] T [I;U]^T explicitly ((n+m) square).
    fn q_of(u: &Matrix, t: &Matrix) -> Matrix {
        let n = t.rows();
        let m = u.rows();
        let v = Matrix::from_fn(n + m, n, |i, j| {
            if i < n {
                if i == j {
                    1.0
                } else {
                    0.0
                }
            } else {
                u[(i - n, j)]
            }
        });
        let mut vt = Matrix::zeros(n + m, n);
        dgemm(Trans::No, Trans::No, 1.0, &v, t, 0.0, &mut vt);
        let mut q = Matrix::identity(n + m);
        dgemm(Trans::No, Trans::Yes, -1.0, &vt, &v, 1.0, &mut q);
        q
    }

    fn upper_of(r: &Matrix) -> Matrix {
        Matrix::from_fn(
            r.rows(),
            r.cols(),
            |i, j| if i <= j { r[(i, j)] } else { 0.0 },
        )
    }

    fn triangular_r(n: usize, seed: u64) -> Matrix {
        let raw = random(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + raw[(i, j)].abs()
            } else if i < j {
                raw[(i, j)]
            } else {
                // Simulate dgeqrt leftovers that must not be touched.
                raw[(i, j)] * 100.0
            }
        })
    }

    #[test]
    fn stack_reconstructs() {
        let n = 5;
        let m = 5;
        let r0 = triangular_r(n, 41);
        let b0 = random(m, n, 42);
        let mut r = r0.clone();
        let mut b = b0.clone();
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);

        // Original stack [upper(R0); B0] must equal Q * [R'; 0].
        let q = q_of(&b, &t);
        let stacked_r = Matrix::from_fn(
            n + m,
            n,
            |i, j| {
                if i < n && i <= j {
                    r[(i, j)]
                } else {
                    0.0
                }
            },
        );
        let mut recon = Matrix::zeros(n + m, n);
        dgemm(Trans::No, Trans::No, 1.0, &q, &stacked_r, 0.0, &mut recon);
        let orig = Matrix::from_fn(n + m, n, |i, j| {
            if i < n {
                upper_of(&r0)[(i, j)]
            } else {
                b0[(i - n, j)]
            }
        });
        let err = frobenius(&recon.sub(&orig)) / frobenius(&orig);
        assert!(err < 1e-13, "reconstruction error {err}");
    }

    #[test]
    fn q_is_orthogonal() {
        let n = 4;
        let mut r = triangular_r(n, 43);
        let mut b = random(6, n, 44);
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);
        let q = q_of(&b, &t);
        let mut defect = Matrix::identity(n + 6);
        dgemm(Trans::Yes, Trans::No, 1.0, &q, &q, -1.0, &mut defect);
        assert!(frobenius(&defect) < 1e-13);
    }

    #[test]
    fn strictly_lower_r_preserved() {
        let n = 4;
        let r0 = triangular_r(n, 45);
        let mut r = r0.clone();
        let mut b = random(4, n, 46);
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);
        for j in 0..n {
            for i in (j + 1)..n {
                assert_eq!(r[(i, j)], r0[(i, j)], "lower R[{i},{j}] must be preserved");
            }
        }
    }

    #[test]
    fn zero_bottom_block_is_identity_transform() {
        let n = 3;
        let r0 = triangular_r(n, 47);
        let mut r = r0.clone();
        let mut b = Matrix::zeros(4, n);
        let mut t = Matrix::zeros(n, n);
        dtsqrt(&mut r, &mut b, &mut t);
        // Nothing to annihilate: R unchanged, taus zero.
        for j in 0..n {
            for i in 0..=j {
                assert!((r[(i, j)] - r0[(i, j)]).abs() < 1e-15);
            }
            assert_eq!(t[(j, j)], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_r_rejected() {
        let mut r = Matrix::zeros(3, 4);
        let mut b = Matrix::zeros(3, 4);
        let mut t = Matrix::zeros(4, 4);
        dtsqrt(&mut r, &mut b, &mut t);
    }
}
