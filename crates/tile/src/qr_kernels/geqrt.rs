//! `DGEQRT`: QR factorization of one tile with T-factor accumulation.
//!
//! Factors the `m x n` tile `A` (with `m >= n`) as `A = Q R` where
//! `Q = I - V T V^T` (compact WY). On return the upper triangle of `A`
//! holds `R`, the strictly lower part holds the Householder vectors `V`
//! (unit diagonal implicit), and `T` holds the `n x n` upper triangular
//! block-reflector factor.

use super::householder;
use crate::matrix::Matrix;

/// Factor tile `a` in place; fill `t` (must be `n x n`, content overwritten).
pub fn dgeqrt(a: &mut Matrix, t: &mut Matrix) {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "dgeqrt requires m >= n (got {m} x {n})");
    assert_eq!(t.rows(), n, "T must be n x n");
    assert_eq!(t.cols(), n, "T must be n x n");
    for v in t.data_mut() {
        *v = 0.0;
    }

    for k in 0..n {
        // Householder on A[k.., k].
        let alpha = a[(k, k)];
        let (beta, tau) = {
            let col = a.col_mut(k);
            householder(alpha, &mut col[k + 1..m])
        };
        a[(k, k)] = beta;

        // Apply H_k = I - tau v v^T to trailing columns, v = [1, A[k+1.., k]].
        if tau != 0.0 {
            for j in (k + 1)..n {
                // w = A[k,j] + dot(v_tail, A[k+1.., j])
                let mut w = a[(k, j)];
                for r in (k + 1)..m {
                    w += a[(r, k)] * a[(r, j)];
                }
                let tw = tau * w;
                a[(k, j)] -= tw;
                for r in (k + 1)..m {
                    let vk = a[(r, k)];
                    a[(r, j)] -= tw * vk;
                }
            }
        }

        // T[0..k, k] = -tau * T[0..k, 0..k] * (V[:, 0..k]^T v_k).
        // z[i] = V[k.., i]^T v_k = A[k, i] + sum_{r>k} A[r, i] * A[r, k].
        let mut z = vec![0.0f64; k];
        for (i, zi) in z.iter_mut().enumerate() {
            let mut acc = a[(k, i)];
            for r in (k + 1)..m {
                acc += a[(r, i)] * a[(r, k)];
            }
            *zi = acc;
        }
        for i in 0..k {
            let mut acc = 0.0;
            // Upper triangular T: T[i, l] nonzero for l >= i.
            for (l, zl) in z.iter().enumerate().skip(i) {
                acc += t[(i, l)] * zl;
            }
            t[(i, k)] = -tau * acc;
        }
        t[(k, k)] = tau;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{dgemm, Trans};
    use crate::generate::random;
    use crate::norms::frobenius;

    /// Materialize V (unit lower trapezoidal) from the factored tile.
    fn v_of(a: &Matrix, n: usize) -> Matrix {
        Matrix::from_fn(a.rows(), n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                a[(i, j)]
            } else {
                0.0
            }
        })
    }

    fn r_of(a: &Matrix, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { 0.0 })
    }

    /// Q = I - V T V^T (m x m).
    fn q_of(a: &Matrix, t: &Matrix) -> Matrix {
        let m = a.rows();
        let n = t.rows();
        let v = v_of(a, n);
        let mut vt = Matrix::zeros(m, n);
        dgemm(Trans::No, Trans::No, 1.0, &v, t, 0.0, &mut vt);
        let mut q = Matrix::identity(m);
        dgemm(Trans::No, Trans::Yes, -1.0, &vt, &v, 1.0, &mut q);
        q
    }

    #[test]
    fn square_tile_reconstructs() {
        let a0 = random(8, 8, 21);
        let mut a = a0.clone();
        let mut t = Matrix::zeros(8, 8);
        dgeqrt(&mut a, &mut t);
        let q = q_of(&a, &t);
        let r = r_of(&a, 8);
        let mut qr = Matrix::zeros(8, 8);
        dgemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut qr);
        let err = frobenius(&qr.sub(&a0)) / frobenius(&a0);
        assert!(err < 1e-13, "relative error {err}");
    }

    #[test]
    fn tall_tile_reconstructs() {
        let a0 = random(10, 4, 22);
        let mut a = a0.clone();
        let mut t = Matrix::zeros(4, 4);
        dgeqrt(&mut a, &mut t);
        let q = q_of(&a, &t);
        // QR with rectangular R (top n rows).
        let r = Matrix::from_fn(10, 4, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
        let mut qr = Matrix::zeros(10, 4);
        dgemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut qr);
        let err = frobenius(&qr.sub(&a0)) / frobenius(&a0);
        assert!(err < 1e-13, "relative error {err}");
    }

    #[test]
    fn q_is_orthogonal() {
        let mut a = random(6, 6, 23);
        let mut t = Matrix::zeros(6, 6);
        dgeqrt(&mut a, &mut t);
        let q = q_of(&a, &t);
        let mut qtq = Matrix::identity(6);
        dgemm(Trans::Yes, Trans::No, 1.0, &q, &q, -1.0, &mut qtq);
        // qtq now holds Q^T Q - I.
        assert!(
            frobenius(&qtq) < 1e-13,
            "orthogonality defect {}",
            frobenius(&qtq)
        );
    }

    #[test]
    fn t_is_upper_triangular() {
        let mut a = random(5, 5, 24);
        let mut t = Matrix::zeros(5, 5);
        dgeqrt(&mut a, &mut t);
        for j in 0..5 {
            for i in (j + 1)..5 {
                assert_eq!(t[(i, j)], 0.0, "T[{i},{j}] must be zero");
            }
        }
    }

    #[test]
    fn r_diagonal_nonzero_for_full_rank() {
        let mut a = crate::generate::diag_dominant(6, 25);
        let mut t = Matrix::zeros(6, 6);
        dgeqrt(&mut a, &mut t);
        for i in 0..6 {
            assert!(a[(i, i)].abs() > 1e-10);
        }
    }

    #[test]
    fn already_triangular_input_is_near_identity_q() {
        // An upper triangular input with positive diagonal factors with
        // tau ~ 0 except sign flips; R should equal the input up to sign.
        let a0 = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                2.0
            } else if i < j {
                0.5
            } else {
                0.0
            }
        });
        let mut a = a0.clone();
        let mut t = Matrix::zeros(4, 4);
        dgeqrt(&mut a, &mut t);
        for i in 0..4 {
            assert!((a[(i, i)].abs() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_tile_rejected() {
        let mut a = Matrix::zeros(3, 5);
        let mut t = Matrix::zeros(5, 5);
        dgeqrt(&mut a, &mut t);
    }
}
