//! `DORMQR`: apply the `Q` of a [`super::dgeqrt`]-factored tile to another
//! tile from the left: `C := op(Q) * C` with `op(Q) = Q` or `Q^T`.
//!
//! Compact WY: `Q = I - V T V^T`, so
//! `Q^T C = C - V T^T (V^T C)` and `Q C = C - V T (V^T C)`.

use super::ApplyTrans;
use crate::blas::{dgemm, Trans};
use crate::matrix::Matrix;

/// Apply `op(Q)` to `c` in place.
///
/// * `v`: the tile returned by `dgeqrt` (reflectors below the diagonal).
/// * `t`: the `T` factor from `dgeqrt` (`k x k`).
/// * `c`: the target tile (`m x n`, with `m == v.rows()`).
pub fn dormqr(trans: ApplyTrans, v: &Matrix, t: &Matrix, c: &mut Matrix) {
    let m = v.rows();
    let k = t.rows();
    assert!(k <= v.cols(), "T larger than reflector count");
    assert_eq!(t.cols(), k, "T must be square");
    assert_eq!(c.rows(), m, "C rows must match V rows");
    let n = c.cols();

    // Materialize the unit-lower-trapezoidal V once; the extra copy is
    // cheap compared to the three GEMMs below.
    let vm = Matrix::from_fn(m, k, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            v[(i, j)]
        } else {
            0.0
        }
    });

    // W = V^T C  (k x n)
    let mut w = Matrix::zeros(k, n);
    dgemm(Trans::Yes, Trans::No, 1.0, &vm, c, 0.0, &mut w);
    // W := op(T) W
    let mut tw = Matrix::zeros(k, n);
    match trans {
        ApplyTrans::Trans => dgemm(Trans::Yes, Trans::No, 1.0, t, &w, 0.0, &mut tw),
        ApplyTrans::No => dgemm(Trans::No, Trans::No, 1.0, t, &w, 0.0, &mut tw),
    }
    // C -= V W
    dgemm(Trans::No, Trans::No, -1.0, &vm, &tw, 1.0, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random;
    use crate::norms::frobenius;
    use crate::qr_kernels::dgeqrt;

    fn factored(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut a = random(n, n, seed);
        let mut t = Matrix::zeros(n, n);
        dgeqrt(&mut a, &mut t);
        (a, t)
    }

    #[test]
    fn qt_then_q_is_identity() {
        let (v, t) = factored(6, 31);
        let c0 = random(6, 4, 32);
        let mut c = c0.clone();
        dormqr(ApplyTrans::Trans, &v, &t, &mut c);
        dormqr(ApplyTrans::No, &v, &t, &mut c);
        let err = frobenius(&c.sub(&c0)) / frobenius(&c0);
        assert!(err < 1e-13, "round trip error {err}");
    }

    #[test]
    fn application_preserves_norm() {
        // Q is orthogonal: ||Q^T C||_F == ||C||_F.
        let (v, t) = factored(8, 33);
        let c0 = random(8, 3, 34);
        let mut c = c0.clone();
        dormqr(ApplyTrans::Trans, &v, &t, &mut c);
        assert!((frobenius(&c) - frobenius(&c0)).abs() < 1e-12);
    }

    #[test]
    fn qt_applied_to_factored_tile_gives_r() {
        // Factoring A gives Q^T A = R: applying Q^T to the *original* A
        // must produce (numerically) the R stored in the factored tile.
        let a0 = random(5, 5, 35);
        let mut fact = a0.clone();
        let mut t = Matrix::zeros(5, 5);
        dgeqrt(&mut fact, &mut t);
        let mut c = a0.clone();
        dormqr(ApplyTrans::Trans, &fact, &t, &mut c);
        for j in 0..5 {
            for i in 0..5 {
                if i <= j {
                    assert!(
                        (c[(i, j)] - fact[(i, j)]).abs() < 1e-12,
                        "R mismatch at ({i},{j})"
                    );
                } else {
                    assert!(c[(i, j)].abs() < 1e-12, "below-diagonal not annihilated");
                }
            }
        }
    }

    #[test]
    fn matches_explicit_q_multiplication() {
        let (v, t) = factored(6, 36);
        // Build Q explicitly by applying Q to the identity.
        let mut q = Matrix::identity(6);
        dormqr(ApplyTrans::No, &v, &t, &mut q);
        let c0 = random(6, 6, 37);
        let mut by_kernel = c0.clone();
        dormqr(ApplyTrans::No, &v, &t, &mut by_kernel);
        let explicit = q.matmul(&c0);
        let err = frobenius(&by_kernel.sub(&explicit));
        assert!(err < 1e-12, "explicit vs kernel mismatch {err}");
    }

    #[test]
    #[should_panic(expected = "C rows")]
    fn dimension_mismatch_panics() {
        let (v, t) = factored(4, 38);
        let mut c = Matrix::zeros(5, 2);
        dormqr(ApplyTrans::No, &v, &t, &mut c);
    }
}
