//! Tile QR kernel family (compact WY representation).
//!
//! These are the four kernels of Algorithm 2 in the paper:
//! [`dgeqrt`] factors a diagonal tile, [`dormqr`] applies its reflectors to
//! tiles right of the diagonal, [`dtsqrt`] factors a triangular-on-top-of-
//! square stack, and [`dtsmqr`] applies those reflectors to the trailing
//! tile pairs. `dtsmqr` dominates the flop count — "the dominant operation
//! from the innermost loop" (§IV-B2).

mod geqrt;
mod ormqr;
mod tsmqr;
mod tsqrt;

pub use geqrt::dgeqrt;
pub use ormqr::dormqr;
pub use tsmqr::dtsmqr;
pub use tsqrt::dtsqrt;

/// Whether to apply `Q` or `Q^T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyTrans {
    /// Apply `Q`.
    No,
    /// Apply `Q^T`.
    Trans,
}

/// Compute a Householder reflection for the vector `[alpha, x...]`:
/// returns `(beta, tau)` and scales `x` in place so the reflector is
/// `H = I - tau * v * v^T` with `v = [1, x...]` and `H [alpha; x_old] =
/// [beta; 0]`.
///
/// `tau == 0` (and `beta == alpha`) when `x` is already zero — the
/// reflection is the identity, matching LAPACK `dlarfg`.
pub(crate) fn householder(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let sigma: f64 = x.iter().map(|&v| v * v).sum();
    if sigma == 0.0 {
        return (alpha, 0.0);
    }
    let norm = (alpha * alpha + sigma).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in x.iter_mut() {
        *v *= scale;
    }
    (beta, tau)
}

#[cfg(test)]
mod house_tests {
    use super::householder;

    #[test]
    fn reflects_to_norm() {
        let mut x = vec![3.0, 4.0];
        let alpha = 0.0;
        let (beta, tau) = householder(alpha, &mut x);
        // |[0,3,4]| = 5, so beta = -+5.
        assert!((beta.abs() - 5.0).abs() < 1e-12);
        // Verify H * [alpha; x_old] = [beta; 0]:
        // v = [1, x], w = v^T [alpha; x_old] ... reconstruct original x.
        let x_old = [3.0, 4.0];
        let v = [1.0, x[0], x[1]];
        let orig = [alpha, x_old[0], x_old[1]];
        let w: f64 = v.iter().zip(orig.iter()).map(|(a, b)| a * b).sum();
        let reflected: Vec<f64> = orig
            .iter()
            .zip(v.iter())
            .map(|(o, vi)| o - tau * w * vi)
            .collect();
        assert!((reflected[0] - beta).abs() < 1e-12);
        assert!(reflected[1].abs() < 1e-12);
        assert!(reflected[2].abs() < 1e-12);
    }

    #[test]
    fn zero_tail_is_identity() {
        let mut x = vec![0.0, 0.0];
        let (beta, tau) = householder(7.0, &mut x);
        assert_eq!(beta, 7.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn negative_alpha_flips_sign() {
        let mut x = vec![1.0];
        let (beta, _) = householder(-2.0, &mut x);
        assert!(beta > 0.0);
    }

    #[test]
    fn reflector_is_orthogonal() {
        // H^T H = I for v=[1,x], tau from householder.
        let mut x = vec![0.5, -1.5, 2.0];
        let (_, tau) = householder(1.0, &mut x);
        let v = [1.0, x[0], x[1], x[2]];
        let n = v.len();
        for i in 0..n {
            for j in 0..n {
                // H = I - tau v v^T; (H^T H)[i,j] = delta - 2 tau v_i v_j + tau^2 v_i v_j (v.v)
                let vv: f64 = v.iter().map(|a| a * a).sum();
                let h = (if i == j { 1.0 } else { 0.0 }) - 2.0 * tau * v[i] * v[j]
                    + tau * tau * v[i] * v[j] * vv;
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((h - expect).abs() < 1e-12, "({i},{j}) = {h}");
            }
        }
    }
}
