//! Matrix generators (seeded, reproducible).

use crate::blas::{dgemm, Trans};
use crate::matrix::Matrix;
use rand::{Rng, SeedableRng};

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random::<f64>() * 2.0 - 1.0)
}

/// Symmetric positive definite matrix: `B*B^T + n*I` with random `B`.
pub fn spd(n: usize, seed: u64) -> Matrix {
    let b = random(n, n, seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = n as f64;
    }
    dgemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
    a
}

/// Symmetric positive definite matrix in O(n^2) work: a symmetrized
/// random matrix made diagonally dominant (`(R + R^T)/2 + n*I`). Use for
/// large benchmark inputs where the `O(n^3)` [`spd`] generator would cost
/// as much as the factorization under test.
pub fn spd_fast(n: usize, seed: u64) -> Matrix {
    let r = random(n, n, seed);
    Matrix::from_fn(n, n, |i, j| {
        let sym = 0.5 * (r[(i, j)] + r[(j, i)]);
        if i == j {
            sym + n as f64
        } else {
            sym
        }
    })
}

/// Symmetric (not necessarily definite) random matrix.
pub fn symmetric(n: usize, seed: u64) -> Matrix {
    let b = random(n, n, seed);
    Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]))
}

/// Diagonally dominant matrix (well conditioned for LU without pivoting).
pub fn diag_dominant(n: usize, seed: u64) -> Matrix {
    let mut a = random(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] = row_sum + 1.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::dpotf2;

    #[test]
    fn random_is_reproducible() {
        assert_eq!(random(4, 4, 42), random(4, 4, 42));
        assert_ne!(random(4, 4, 42), random(4, 4, 43));
    }

    #[test]
    fn random_entries_in_range() {
        let m = random(10, 10, 1);
        assert!(m.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn spd_is_symmetric_and_choleskyable() {
        let a = spd(12, 5);
        for i in 0..12 {
            for j in 0..12 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        let mut f = a.clone();
        dpotf2(&mut f).expect("spd must factor");
    }

    #[test]
    fn spd_fast_is_symmetric_and_choleskyable() {
        let a = spd_fast(20, 6);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
        let mut f = a.clone();
        dpotf2(&mut f).expect("spd_fast must factor");
    }

    #[test]
    fn symmetric_is_symmetric() {
        let a = symmetric(9, 2);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn diag_dominant_rows_dominated() {
        let a = diag_dominant(8, 3);
        for i in 0..8 {
            let off: f64 = (0..8).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() > off);
        }
    }
}
