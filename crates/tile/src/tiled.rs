//! Tile layout: a matrix stored as a grid of `nb x nb` tiles.
//!
//! "The tile approach consists of breaking the matrix panel factorization
//! and trailing submatrix update steps into smaller tasks that operate on
//! relatively small nb × nb tiles (or submatrices) of consecutive data"
//! (paper §IV-B). Each tile is contiguous so a kernel touches exactly one
//! or a few tiles — the unit of dependence tracking.

use crate::matrix::Matrix;

/// A matrix stored by tiles. Edge tiles may be smaller when the global
/// dimensions are not multiples of `nb`.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledMatrix {
    rows: usize,
    cols: usize,
    nb: usize,
    mt: usize,
    nt: usize,
    /// Tile grid in column-major order: tile (i, j) at `i + j * mt`.
    tiles: Vec<Matrix>,
}

impl TiledMatrix {
    /// Zero tiled matrix.
    pub fn zeros(rows: usize, cols: usize, nb: usize) -> Self {
        assert!(nb > 0, "tile size must be positive");
        let mt = rows.div_ceil(nb).max(if rows == 0 { 0 } else { 1 });
        let nt = cols.div_ceil(nb).max(if cols == 0 { 0 } else { 1 });
        // Column-major tile grid: (i, j) lives at i + j*mt.
        let mut tiles = Vec::with_capacity(mt * nt);
        for j in 0..nt {
            let tc = Self::edge(cols, nb, j);
            for i in 0..mt {
                let tr = Self::edge(rows, nb, i);
                tiles.push(Matrix::zeros(tr, tc));
            }
        }
        TiledMatrix {
            rows,
            cols,
            nb,
            mt,
            nt,
            tiles,
        }
    }

    fn edge(total: usize, nb: usize, idx: usize) -> usize {
        let start = idx * nb;
        nb.min(total - start)
    }

    /// Convert a dense matrix into tiles.
    pub fn from_matrix(a: &Matrix, nb: usize) -> Self {
        let mut t = Self::zeros(a.rows(), a.cols(), nb);
        for tj in 0..t.nt {
            for ti in 0..t.mt {
                let (r0, c0) = (ti * nb, tj * nb);
                let tile = t.tile_mut(ti, tj);
                for j in 0..tile.cols() {
                    for i in 0..tile.rows() {
                        tile[(i, j)] = a[(r0 + i, c0 + j)];
                    }
                }
            }
        }
        t
    }

    /// Convert back to a dense matrix.
    pub fn to_matrix(&self) -> Matrix {
        let mut a = Matrix::zeros(self.rows, self.cols);
        for tj in 0..self.nt {
            for ti in 0..self.mt {
                let tile = self.tile(ti, tj);
                let (r0, c0) = (ti * self.nb, tj * self.nb);
                for j in 0..tile.cols() {
                    for i in 0..tile.rows() {
                        a[(r0 + i, c0 + j)] = tile[(i, j)];
                    }
                }
            }
        }
        a
    }

    /// Global row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tile rows.
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Borrow tile `(i, j)`.
    pub fn tile(&self, i: usize, j: usize) -> &Matrix {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        &self.tiles[i + j * self.mt]
    }

    /// Mutably borrow tile `(i, j)`.
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Matrix {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        &mut self.tiles[i + j * self.mt]
    }

    /// Flat tile index of `(i, j)` — stable id for dependence tracking.
    pub fn tile_index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        i + j * self.mt
    }

    /// Take all tiles out (consumes the layout), returning the grid and
    /// its shape — used to hand tiles to the runtime behind locks.
    pub fn into_tiles(self) -> (Vec<Matrix>, usize, usize, usize) {
        (self.tiles, self.mt, self.nt, self.nb)
    }

    /// Rebuild from tiles previously taken with [`Self::into_tiles`].
    pub fn from_tiles(
        tiles: Vec<Matrix>,
        mt: usize,
        nt: usize,
        nb: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        assert_eq!(tiles.len(), mt * nt, "tile count mismatch");
        TiledMatrix {
            rows,
            cols,
            nb,
            mt,
            nt,
            tiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random;

    #[test]
    fn round_trip_exact_division() {
        let a = random(8, 8, 71);
        let t = TiledMatrix::from_matrix(&a, 4);
        assert_eq!(t.mt(), 2);
        assert_eq!(t.nt(), 2);
        assert_eq!(t.to_matrix(), a);
    }

    #[test]
    fn round_trip_with_edge_tiles() {
        let a = random(10, 7, 72);
        let t = TiledMatrix::from_matrix(&a, 4);
        assert_eq!(t.mt(), 3);
        assert_eq!(t.nt(), 2);
        assert_eq!(t.tile(2, 0).rows(), 2);
        assert_eq!(t.tile(0, 1).cols(), 3);
        assert_eq!(t.to_matrix(), a);
    }

    #[test]
    fn tile_contents_match_blocks() {
        let a = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let t = TiledMatrix::from_matrix(&a, 3);
        let tile = t.tile(1, 0);
        assert_eq!(tile[(0, 0)], a[(3, 0)]);
        assert_eq!(tile[(2, 2)], a[(5, 2)]);
    }

    #[test]
    fn tile_index_is_stable_and_unique() {
        let t = TiledMatrix::zeros(9, 9, 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..3 {
                assert!(seen.insert(t.tile_index(i, j)));
            }
        }
    }

    #[test]
    fn into_from_tiles_round_trip() {
        let a = random(6, 6, 73);
        let t = TiledMatrix::from_matrix(&a, 3);
        let (tiles, mt, nt, nb) = t.clone().into_tiles();
        let back = TiledMatrix::from_tiles(tiles, mt, nt, nb, 6, 6);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_bounds_checked() {
        let t = TiledMatrix::zeros(4, 4, 2);
        t.tile(2, 0);
    }

    #[test]
    fn mutation_via_tile_mut() {
        let mut t = TiledMatrix::zeros(4, 4, 2);
        t.tile_mut(1, 1)[(0, 0)] = 5.0;
        assert_eq!(t.to_matrix()[(2, 2)], 5.0);
    }
}
