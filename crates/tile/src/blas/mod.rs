//! BLAS-like dense kernels (double precision, column-major).

mod gemm;
mod potf2;
mod syrk;
mod trsm;

pub use gemm::{dgemm, Trans};
pub use potf2::{dpotf2, NotPositiveDefinite};
pub use syrk::dsyrk;
pub use trsm::{dtrsm, Diag, Side, Uplo};
