//! Symmetric rank-k update: `C = alpha*A*A^T + beta*C` (one triangle).
//!
//! Used by the tile Cholesky to update diagonal tiles (Algorithm 1, line 8).

use crate::blas::gemm::Trans;
use crate::blas::trsm::Uplo;
use crate::matrix::Matrix;

/// `C = alpha * A * A^T + beta * C` (`trans == No`) or
/// `C = alpha * A^T * A + beta * C` (`trans == Yes`), updating only the
/// `uplo` triangle of the square matrix `C` (the other triangle is left
/// untouched).
pub fn dsyrk(uplo: Uplo, trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = match trans {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    };
    assert!(c.is_square(), "SYRK output must be square");
    assert_eq!(c.rows(), n, "C dimension mismatch");

    // Scale the relevant triangle.
    if beta != 1.0 {
        for j in 0..n {
            let (i0, i1) = match uplo {
                Uplo::Lower => (j, n),
                Uplo::Upper => (0, j + 1),
            };
            for i in i0..i1 {
                c[(i, j)] *= beta;
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match trans {
        Trans::No => {
            // C[i,j] += alpha * dot(A[i,:], A[j,:]) — go column-of-A-wise
            // for stride-1 access: C[:,j] += alpha * A[j,l] * A[:,l].
            for j in 0..n {
                for l in 0..k {
                    let f = alpha * a[(j, l)];
                    if f == 0.0 {
                        continue;
                    }
                    let (i0, i1) = match uplo {
                        Uplo::Lower => (j, n),
                        Uplo::Upper => (0, j + 1),
                    };
                    let acol = &a.data()[l * n..(l + 1) * n];
                    let ccol = &mut c.data_mut()[j * n..(j + 1) * n];
                    for i in i0..i1 {
                        ccol[i] += f * acol[i];
                    }
                }
            }
        }
        Trans::Yes => {
            // C[i,j] += alpha * dot(A[:,i], A[:,j]).
            for j in 0..n {
                let (i0, i1) = match uplo {
                    Uplo::Lower => (j, n),
                    Uplo::Upper => (0, j + 1),
                };
                for i in i0..i1 {
                    let ai = &a.data()[i * k..(i + 1) * k];
                    let aj = &a.data()[j * k..(j + 1) * k];
                    let mut dot = 0.0;
                    for l in 0..k {
                        dot += ai[l] * aj[l];
                    }
                    c[(i, j)] += alpha * dot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn lower_no_trans_matches_gemm() {
        let a = rand_matrix(5, 3, 1);
        let c0 = rand_matrix(5, 5, 2);
        let mut c = c0.clone();
        dsyrk(Uplo::Lower, Trans::No, 1.5, &a, 0.5, &mut c);

        let mut full = c0.clone();
        crate::blas::dgemm(Trans::No, Trans::Yes, 1.5, &a, &a, 0.5, &mut full);
        for j in 0..5 {
            for i in 0..5 {
                if i >= j {
                    assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-13, "lower ({i},{j})");
                } else {
                    assert_eq!(c[(i, j)], c0[(i, j)], "upper must be untouched");
                }
            }
        }
    }

    #[test]
    fn upper_trans_matches_gemm() {
        let a = rand_matrix(4, 6, 3);
        let c0 = rand_matrix(6, 6, 4);
        let mut c = c0.clone();
        dsyrk(Uplo::Upper, Trans::Yes, -1.0, &a, 1.0, &mut c);

        let mut full = c0.clone();
        crate::blas::dgemm(Trans::Yes, Trans::No, -1.0, &a, &a, 1.0, &mut full);
        for j in 0..6 {
            for i in 0..6 {
                if i <= j {
                    assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-13, "upper ({i},{j})");
                } else {
                    assert_eq!(c[(i, j)], c0[(i, j)], "lower must be untouched");
                }
            }
        }
    }

    #[test]
    fn result_triangle_is_symmetric_product() {
        // With beta = 0 the result triangle holds A*A^T, which is PSD —
        // its diagonal must be non-negative.
        let a = rand_matrix(4, 4, 5);
        let mut c = Matrix::zeros(4, 4);
        dsyrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        for i in 0..4 {
            assert!(c[(i, i)] >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn requires_square_c() {
        let a = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(3, 4);
        dsyrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
    }
}
