//! General matrix-matrix multiply: `C = alpha*op(A)*op(B) + beta*C`.
//!
//! The dominant kernel of the tile Cholesky factorization (paper §IV-B1).
//! Loop orders are chosen for unit stride in the column-major layout; the
//! NN case uses the classic `j-l-i` axpy form which vectorizes well.

use crate::matrix::Matrix;

/// Transposition option for a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    fn dims(self, m: &Matrix) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Panics on dimension mismatch.
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = transa.dims(a);
    let (kb, n) = transb.dims(b);
    assert_eq!(ka, kb, "inner dimension mismatch: {ka} vs {kb}");
    assert_eq!(c.rows(), m, "C row mismatch");
    assert_eq!(c.cols(), n, "C col mismatch");
    let k = ka;

    if beta != 1.0 {
        for x in c.data_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match (transa, transb) {
        (Trans::No, Trans::No) => {
            // C[:,j] += alpha * B[l,j] * A[:,l]
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b[(l, j)];
                    if blj == 0.0 {
                        continue;
                    }
                    let acol = &a.data()[l * m..(l + 1) * m];
                    let ccol = &mut c.data_mut()[j * m..(j + 1) * m];
                    for i in 0..m {
                        ccol[i] += blj * acol[i];
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j])
            for j in 0..n {
                for i in 0..m {
                    let acol = &a.data()[i * k..(i + 1) * k];
                    let bcol = &b.data()[j * k..(j + 1) * k];
                    let mut dot = 0.0;
                    for l in 0..k {
                        dot += acol[l] * bcol[l];
                    }
                    c[(i, j)] += alpha * dot;
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:,j] += alpha * B[j,l] * A[:,l]
            for l in 0..k {
                let acol_start = l * m;
                for j in 0..n {
                    let bjl = alpha * b[(j, l)];
                    if bjl == 0.0 {
                        continue;
                    }
                    let (adata, cdata) = (a.data(), c.data_mut());
                    let acol = &adata[acol_start..acol_start + m];
                    let ccol = &mut cdata[j * m..(j + 1) * m];
                    for i in 0..m {
                        ccol[i] += bjl * acol[i];
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = &a.data()[i * k..(i + 1) * k];
                    let mut dot = 0.0;
                    for l in 0..k {
                        dot += acol[l] * b[(j, l)];
                    }
                    c[(i, j)] += alpha * dot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c0: &Matrix,
    ) -> Matrix {
        let (m, k) = transa.dims(a);
        let (_, n) = transb.dims(b);
        let mut c = c0.clone();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    let av = match transa {
                        Trans::No => a[(i, l)],
                        Trans::Yes => a[(l, i)],
                    };
                    let bv = match transb {
                        Trans::No => b[(l, j)],
                        Trans::Yes => b[(j, l)],
                    };
                    acc += av * bv;
                }
                c[(i, j)] = alpha * acc + beta * c0[(i, j)];
            }
        }
        c
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let d = a.sub(b).max_abs();
        assert!(d < tol, "max diff {d}");
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, k, n) = (7, 5, 6);
            let a = match ta {
                Trans::No => rand_matrix(m, k, 1),
                Trans::Yes => rand_matrix(k, m, 1),
            };
            let b = match tb {
                Trans::No => rand_matrix(k, n, 2),
                Trans::Yes => rand_matrix(n, k, 2),
            };
            let c0 = rand_matrix(m, n, 3);
            let expect = naive(ta, tb, 1.3, &a, &b, 0.7, &c0);
            let mut c = c0.clone();
            dgemm(ta, tb, 1.3, &a, &b, 0.7, &mut c);
            assert_close(&c, &expect, 1e-12);
        }
    }

    #[test]
    fn alpha_zero_scales_only() {
        let a = rand_matrix(3, 3, 4);
        let b = rand_matrix(3, 3, 5);
        let c0 = rand_matrix(3, 3, 6);
        let mut c = c0.clone();
        dgemm(Trans::No, Trans::No, 0.0, &a, &b, 2.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                assert!((c[(i, j)] - 2.0 * c0[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn beta_one_accumulates() {
        let a = Matrix::identity(2);
        let b = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut c = Matrix::from_fn(2, 2, |_, _| 1.0);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &mut c);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn rectangular_shapes() {
        let a = rand_matrix(4, 2, 7);
        let b = rand_matrix(2, 5, 8);
        let mut c = Matrix::zeros(4, 5);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        let expect = naive(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &Matrix::zeros(4, 5));
        assert_close(&c, &expect, 1e-13);
    }

    #[test]
    fn empty_inner_dimension_is_noop_with_beta() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 5.0);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.5, &mut c);
        assert!((c[(0, 0)] - 2.5).abs() < 1e-15);
    }
}
