//! Triangular solve with multiple right-hand sides:
//! `op(A) * X = alpha * B` or `X * op(A) = alpha * B`, with `X` overwriting
//! `B`. All eight side/uplo/trans combinations are supported (the tile
//! Cholesky uses Right/Lower/Trans, the tile LU uses Left/Lower/NoTrans-Unit
//! and Right/Upper/NoTrans).

use crate::blas::gemm::Trans;
use crate::matrix::Matrix;

/// Which side the triangular matrix multiplies from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `op(A) * X = alpha * B`.
    Left,
    /// `X * op(A) = alpha * B`.
    Right,
}

/// Which triangle of `A` is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether the diagonal of `A` is assumed to be all ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Use the stored diagonal.
    NonUnit,
    /// Assume an implicit unit diagonal.
    Unit,
}

/// Solve the triangular system, overwriting `b` with the solution `X`.
pub fn dtrsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &Matrix,
    b: &mut Matrix,
) {
    assert!(a.is_square(), "triangular factor must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "B row mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "B col mismatch"),
    }
    if alpha != 1.0 {
        for x in b.data_mut() {
            *x *= alpha;
        }
    }
    if n == 0 || b.rows() == 0 || b.cols() == 0 {
        return;
    }

    // The effective triangular orientation after transposition: a lower
    // factor used transposed behaves like an upper factor, and vice versa.
    // `elem(i, j)` fetches op(A)[i, j].
    let effective_lower = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );
    let elem = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => a[(i, j)],
            Trans::Yes => a[(j, i)],
        }
    };

    match side {
        Side::Left => {
            // op(A) X = B, column by column of B.
            let nrhs = b.cols();
            if effective_lower {
                // Forward substitution.
                for j in 0..nrhs {
                    for i in 0..n {
                        let mut s = b[(i, j)];
                        for l in 0..i {
                            s -= elem(i, l) * b[(l, j)];
                        }
                        if matches!(diag, Diag::NonUnit) {
                            s /= elem(i, i);
                        }
                        b[(i, j)] = s;
                    }
                }
            } else {
                // Back substitution.
                for j in 0..nrhs {
                    for i in (0..n).rev() {
                        let mut s = b[(i, j)];
                        for l in (i + 1)..n {
                            s -= elem(i, l) * b[(l, j)];
                        }
                        if matches!(diag, Diag::NonUnit) {
                            s /= elem(i, i);
                        }
                        b[(i, j)] = s;
                    }
                }
            }
        }
        Side::Right => {
            // X op(A) = B: B[:,j] = sum_k X[:,k] op(A)[k,j].
            let m = b.rows();
            if effective_lower {
                // op(A)[k,j] nonzero for k >= j: solve columns backward.
                for j in (0..n).rev() {
                    // X[:,j] = (B[:,j] - sum_{k>j} X[:,k] op(A)[k,j]) / op(A)[j,j]
                    for k in (j + 1)..n {
                        let f = elem(k, j);
                        if f == 0.0 {
                            continue;
                        }
                        let (xk, bj) = b.two_cols_mut(k, j);
                        for i in 0..m {
                            bj[i] -= f * xk[i];
                        }
                    }
                    if matches!(diag, Diag::NonUnit) {
                        let d = elem(j, j);
                        for i in 0..m {
                            b[(i, j)] /= d;
                        }
                    }
                }
            } else {
                // op(A)[k,j] nonzero for k <= j: solve columns forward.
                for j in 0..n {
                    for k in 0..j {
                        let f = elem(k, j);
                        if f == 0.0 {
                            continue;
                        }
                        let (xk, bj) = b.two_cols_mut(k, j);
                        for i in 0..m {
                            bj[i] -= f * xk[i];
                        }
                    }
                    if matches!(diag, Diag::NonUnit) {
                        let d = elem(j, j);
                        for i in 0..m {
                            b[(i, j)] /= d;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::dgemm;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    /// Well-conditioned triangular factor: random triangle, dominant diagonal.
    fn tri_factor(n: usize, uplo: Uplo, seed: u64) -> Matrix {
        let r = rand_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if i == j {
                2.0 + r[(i, j)].abs()
            } else if keep {
                r[(i, j)] * 0.3
            } else {
                // Garbage in the unreferenced triangle: must be ignored.
                1e9
            }
        })
    }

    fn op(a: &Matrix, trans: Trans, uplo: Uplo, diag: Diag) -> Matrix {
        // Materialize the triangular operator (for residual checks).
        let n = a.rows();
        let t = Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if !keep {
                0.0
            } else if i == j && matches!(diag, Diag::Unit) {
                1.0
            } else {
                a[(i, j)]
            }
        });
        match trans {
            Trans::No => t,
            Trans::Yes => t.transposed(),
        }
    }

    #[test]
    fn all_combinations_solve_correctly() {
        let n = 6;
        let nrhs = 4;
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let a = tri_factor(n, uplo, 7);
                        let b0 = match side {
                            Side::Left => rand_matrix(n, nrhs, 9),
                            Side::Right => rand_matrix(nrhs, n, 9),
                        };
                        let mut x = b0.clone();
                        dtrsm(side, uplo, trans, diag, 2.0, &a, &mut x);
                        // Check op(A) X = 2 B (left) or X op(A) = 2 B.
                        let opa = op(&a, trans, uplo, diag);
                        let mut recon = match side {
                            Side::Left => Matrix::zeros(n, nrhs),
                            Side::Right => Matrix::zeros(nrhs, n),
                        };
                        match side {
                            Side::Left => {
                                dgemm(Trans::No, Trans::No, 1.0, &opa, &x, 0.0, &mut recon)
                            }
                            Side::Right => {
                                dgemm(Trans::No, Trans::No, 1.0, &x, &opa, 0.0, &mut recon)
                            }
                        }
                        let mut expect = b0.clone();
                        for v in expect.data_mut() {
                            *v *= 2.0;
                        }
                        let err = recon.sub(&expect).max_abs();
                        assert!(
                            err < 1e-10,
                            "side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?}: err {err}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn identity_factor_scales_only() {
        let a = Matrix::identity(3);
        let b0 = rand_matrix(3, 2, 11);
        let mut b = b0.clone();
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            3.0,
            &a,
            &mut b,
        );
        for i in 0..3 {
            for j in 0..2 {
                assert!((b[(i, j)] - 3.0 * b0[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square_factor() {
        let a = Matrix::zeros(3, 2);
        let mut b = Matrix::zeros(3, 2);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            &a,
            &mut b,
        );
    }

    #[test]
    fn unit_diag_ignores_stored_diagonal() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 123.0; // must be ignored under Diag::Unit
        a[(1, 0)] = 0.0;
        let mut b = Matrix::from_fn(2, 1, |i, _| (i + 1) as f64);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::Unit,
            1.0,
            &a,
            &mut b,
        );
        assert_eq!(b[(0, 0)], 1.0);
        assert_eq!(b[(1, 0)], 2.0);
    }
}
