//! Unblocked Cholesky factorization of one tile (lower variant).
//!
//! The paper's Algorithm 1 calls this `DPOTF2`: it factors the diagonal
//! tile `A_kk = L L^T` in place.

use crate::matrix::Matrix;

/// Error from a failed Cholesky step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that was not positive.
    pub pivot: usize,
    /// The offending pivot value.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: pivot {} = {:.6e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// In-place lower Cholesky of a square matrix: on success the lower
/// triangle (including diagonal) holds `L`; the strictly upper triangle is
/// left untouched (callers treat it as garbage, like LAPACK).
pub fn dpotf2(a: &mut Matrix) -> Result<(), NotPositiveDefinite> {
    assert!(a.is_square(), "Cholesky requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        // d = A[j,j] - dot(L[j, 0..j], L[j, 0..j])
        let mut d = a[(j, j)];
        for k in 0..j {
            let l = a[(j, k)];
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j, value: d });
        }
        let d = d.sqrt();
        a[(j, j)] = d;
        // Column update below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / d;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{dgemm, Trans};

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let b = Matrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // A = B*B^T + n*I is SPD.
        let mut a = Matrix::identity(n);
        for i in 0..n {
            a[(i, i)] = n as f64;
        }
        dgemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
        a
    }

    fn lower_of(a: &Matrix) -> Matrix {
        Matrix::from_fn(
            a.rows(),
            a.cols(),
            |i, j| if i >= j { a[(i, j)] } else { 0.0 },
        )
    }

    #[test]
    fn factorization_reconstructs() {
        let a0 = spd(8, 3);
        let mut a = a0.clone();
        dpotf2(&mut a).unwrap();
        let l = lower_of(&a);
        let mut recon = Matrix::zeros(8, 8);
        dgemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        let err = recon.sub(&a0).max_abs() / a0.max_abs();
        assert!(err < 1e-12, "relative error {err}");
    }

    #[test]
    fn diagonal_is_positive() {
        let mut a = spd(5, 7);
        dpotf2(&mut a).unwrap();
        for i in 0..5 {
            assert!(a[(i, i)] > 0.0);
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let a0 = spd(4, 11);
        let mut a = a0.clone();
        dpotf2(&mut a).unwrap();
        for j in 0..4 {
            for i in 0..j {
                assert_eq!(a[(i, j)], a0[(i, j)], "upper entry ({i},{j}) modified");
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = -1.0;
        let err = dpotf2(&mut a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value < 0.0);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn one_by_one() {
        let mut a = Matrix::from_col_major(1, 1, vec![4.0]);
        dpotf2(&mut a).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
        let mut bad = Matrix::from_col_major(1, 1, vec![0.0]);
        assert!(dpotf2(&mut bad).is_err());
    }
}
