//! # supersim-tile
//!
//! Dense tile linear algebra, built from scratch: the computational
//! substrate the paper's case studies run on (§IV-B).
//!
//! The paper links against Intel MKL; this crate provides pure-Rust
//! equivalents of every kernel the tile Cholesky and tile QR algorithms
//! need, plus the tile algorithms themselves and the numerical checks used
//! to verify them:
//!
//! * [`matrix`] — column-major dense matrices;
//! * [`tiled`] — the `nb x nb` tile layout ("blocks-of-columns" storage);
//! * [`blas`] — `dgemm`, `dsyrk`, `dtrsm`, `dpotf2`;
//! * [`qr_kernels`] — the tile QR kernel family `dgeqrt`, `dormqr`,
//!   `dtsqrt`, `dtsmqr` (compact WY representation, as in PLASMA);
//! * [`cholesky`], [`qr`], [`lu`] — sequential tile algorithm drivers
//!   (Algorithms 1 and 2 of the paper; LU is the documented extension);
//! * [`generate`], [`norms`], [`verify`] — matrix generators, norms and
//!   residual checks;
//! * [`flops`] — operation counts for GFLOP/s reporting.

pub mod blas;
pub mod cholesky;
pub mod flops;
pub mod generate;
pub mod lu;
pub mod matrix;
pub mod norms;
#[cfg(test)]
mod proptests;
pub mod qr;
pub mod qr_kernels;
pub mod tiled;
pub mod verify;

pub use matrix::Matrix;
pub use tiled::TiledMatrix;
