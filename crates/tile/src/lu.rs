//! Tile LU factorization **without pivoting** — the documented extension
//! workload beyond the paper's two case studies.
//!
//! QUARK's flagship application (PLASMA) also schedules LU; including it
//! exercises a third dependence pattern (the diagonal tile is both a left
//! and a right triangular factor). Without pivoting the algorithm is only
//! stable for diagonally dominant (or SPD) matrices, which is what
//! [`crate::generate::diag_dominant`] provides; this restriction is
//! intentional and documented.

use crate::blas::{dgemm, dtrsm, Diag, Side, Trans, Uplo};
use crate::matrix::Matrix;
use crate::tiled::TiledMatrix;

/// Error: a zero (or non-finite) pivot was encountered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroPivot {
    /// Global pivot index.
    pub pivot: usize,
}

impl std::fmt::Display for ZeroPivot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "zero pivot at index {} (LU without pivoting)",
            self.pivot
        )
    }
}

impl std::error::Error for ZeroPivot {}

/// One kernel invocation of the tile LU algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuTask {
    /// Unblocked LU of the diagonal tile.
    Getrf { k: usize },
    /// `A_kj := L_kk^-1 A_kj` (row panel).
    TrsmL { k: usize, j: usize },
    /// `A_ik := A_ik U_kk^-1` (column panel).
    TrsmU { k: usize, i: usize },
    /// `A_ij -= A_ik A_kj` (trailing update).
    Gemm { k: usize, i: usize, j: usize },
}

impl LuTask {
    /// Kernel-class label used in traces and models.
    pub fn label(&self) -> &'static str {
        match self {
            LuTask::Getrf { .. } => "dgetrf",
            LuTask::TrsmL { .. } => "dtrsm_l",
            LuTask::TrsmU { .. } => "dtrsm_u",
            LuTask::Gemm { .. } => "dgemm",
        }
    }
}

/// The serial task stream of the tile LU of an `nt x nt` tile matrix.
pub fn task_stream(nt: usize) -> Vec<LuTask> {
    let mut tasks = Vec::new();
    for k in 0..nt {
        tasks.push(LuTask::Getrf { k });
        for j in (k + 1)..nt {
            tasks.push(LuTask::TrsmL { k, j });
        }
        for i in (k + 1)..nt {
            tasks.push(LuTask::TrsmU { k, i });
        }
        for i in (k + 1)..nt {
            for j in (k + 1)..nt {
                tasks.push(LuTask::Gemm { k, i, j });
            }
        }
    }
    tasks
}

/// Unblocked LU without pivoting of one square tile (right-looking).
pub fn dgetrf_nopiv(a: &mut Matrix, pivot_base: usize) -> Result<(), ZeroPivot> {
    assert!(a.is_square(), "LU tile must be square");
    let n = a.rows();
    for k in 0..n {
        let piv = a[(k, k)];
        if piv == 0.0 || !piv.is_finite() {
            return Err(ZeroPivot {
                pivot: pivot_base + k,
            });
        }
        for i in (k + 1)..n {
            let l = a[(i, k)] / piv;
            a[(i, k)] = l;
            for j in (k + 1)..n {
                let akj = a[(k, j)];
                a[(i, j)] -= l * akj;
            }
        }
    }
    Ok(())
}

/// Execute one LU task.
pub fn execute_task(a: &mut TiledMatrix, task: LuTask) -> Result<(), ZeroPivot> {
    match task {
        LuTask::Getrf { k } => {
            let base = k * a.nb();
            dgetrf_nopiv(a.tile_mut(k, k), base)?;
        }
        LuTask::TrsmL { k, j } => {
            let akk = a.tile(k, k).clone();
            dtrsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::Unit,
                1.0,
                &akk,
                a.tile_mut(k, j),
            );
        }
        LuTask::TrsmU { k, i } => {
            let akk = a.tile(k, k).clone();
            dtrsm(
                Side::Right,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &akk,
                a.tile_mut(i, k),
            );
        }
        LuTask::Gemm { k, i, j } => {
            let aik = a.tile(i, k).clone();
            let akj = a.tile(k, j).clone();
            dgemm(
                Trans::No,
                Trans::No,
                -1.0,
                &aik,
                &akj,
                1.0,
                a.tile_mut(i, j),
            );
        }
    }
    Ok(())
}

/// Sequential tile LU without pivoting: `A = L U` in place (unit-lower `L`
/// below the diagonal, `U` on and above).
pub fn factor(a: &mut TiledMatrix) -> Result<(), ZeroPivot> {
    assert_eq!(a.mt(), a.nt(), "LU requires a square tile grid");
    for task in task_stream(a.nt()) {
        execute_task(a, task)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::diag_dominant;
    use crate::verify::lu_residual;

    #[test]
    fn task_stream_counts() {
        // nt potrf-analog + 2*nt(nt-1)/2 trsms + sum (nt-k-1)^2 gemms.
        for nt in 1..6usize {
            let n = task_stream(nt).len();
            let gemms: usize = (0..nt).map(|k| (nt - k - 1) * (nt - k - 1)).sum();
            assert_eq!(n, nt + nt * (nt - 1) + gemms);
        }
    }

    #[test]
    fn factorization_residual_small() {
        let n = 24;
        let a0 = diag_dominant(n, 111);
        let mut t = TiledMatrix::from_matrix(&a0, 6);
        factor(&mut t).unwrap();
        let res = lu_residual(&a0, &t);
        assert!(res < 1e-13, "residual {res}");
    }

    #[test]
    fn edge_tiles_work() {
        let n = 19;
        let a0 = diag_dominant(n, 112);
        let mut t = TiledMatrix::from_matrix(&a0, 8);
        factor(&mut t).unwrap();
        assert!(lu_residual(&a0, &t) < 1e-13);
    }

    #[test]
    fn zero_pivot_detected() {
        let mut m = Matrix::zeros(4, 4);
        // Row of zeros makes the first pivot zero.
        m[(1, 1)] = 1.0;
        m[(2, 2)] = 1.0;
        m[(3, 3)] = 1.0;
        let mut t = TiledMatrix::from_matrix(&m, 2);
        let err = factor(&mut t).unwrap_err();
        assert_eq!(err.pivot, 0);
        assert!(err.to_string().contains("zero pivot"));
    }

    #[test]
    fn matches_unblocked_reference() {
        let n = 16;
        let a0 = diag_dominant(n, 113);
        let mut tiled = TiledMatrix::from_matrix(&a0, 4);
        factor(&mut tiled).unwrap();
        let mut reference = a0.clone();
        dgetrf_nopiv(&mut reference, 0).unwrap();
        let full = tiled.to_matrix();
        for j in 0..n {
            for i in 0..n {
                assert!(
                    (full[(i, j)] - reference[(i, j)]).abs() < 1e-10,
                    "LU mismatch at ({i},{j})"
                );
            }
        }
    }
}
