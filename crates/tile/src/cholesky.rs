//! Tile Cholesky factorization (paper Algorithm 1), sequential driver.
//!
//! The parallel (runtime-scheduled) version lives in `supersim-workloads`;
//! this sequential driver defines the reference task order and is used for
//! numerical verification. It issues exactly the same kernel sequence that
//! the workload generator submits to the schedulers.

use crate::blas::{dgemm, dpotf2, dsyrk, dtrsm, Diag, NotPositiveDefinite, Side, Trans, Uplo};
use crate::tiled::TiledMatrix;

pub use crate::blas::NotPositiveDefinite as CholeskyError;

/// One kernel invocation of the tile Cholesky algorithm, in submission
/// order — shared by this driver and the workload generator so the task
/// stream is defined in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyTask {
    /// `DPOTF2(A[k][k])`.
    Potrf { k: usize },
    /// `DTRSM(A[k][k], A[i][k])`: `A_ik := A_ik * A_kk^-T`.
    Trsm { k: usize, i: usize },
    /// `DSYRK(A[i][i], A[i][k])`: `A_ii -= A_ik * A_ik^T` (lower).
    Syrk { k: usize, i: usize },
    /// `DGEMM(A[i][j], A[i][k], A[j][k])`: `A_ij -= A_ik * A_jk^T`.
    Gemm { k: usize, i: usize, j: usize },
}

impl CholeskyTask {
    /// The kernel-class label used in traces and models.
    pub fn label(&self) -> &'static str {
        match self {
            CholeskyTask::Potrf { .. } => "dpotrf",
            CholeskyTask::Trsm { .. } => "dtrsm",
            CholeskyTask::Syrk { .. } => "dsyrk",
            CholeskyTask::Gemm { .. } => "dgemm",
        }
    }
}

/// The serial task stream of the tile Cholesky of an `nt x nt` tile matrix
/// (Algorithm 1 of the paper, right-looking variant).
pub fn task_stream(nt: usize) -> Vec<CholeskyTask> {
    let mut tasks = Vec::new();
    for k in 0..nt {
        tasks.push(CholeskyTask::Potrf { k });
        for i in (k + 1)..nt {
            tasks.push(CholeskyTask::Trsm { k, i });
        }
        for i in (k + 1)..nt {
            tasks.push(CholeskyTask::Syrk { k, i });
            for j in (k + 1)..i {
                tasks.push(CholeskyTask::Gemm { k, i, j });
            }
        }
    }
    tasks
}

/// Execute one Cholesky task on the tiled matrix.
pub fn execute_task(a: &mut TiledMatrix, task: CholeskyTask) -> Result<(), NotPositiveDefinite> {
    match task {
        CholeskyTask::Potrf { k } => dpotf2(a.tile_mut(k, k))?,
        CholeskyTask::Trsm { k, i } => {
            let akk = a.tile(k, k).clone();
            dtrsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                1.0,
                &akk,
                a.tile_mut(i, k),
            );
        }
        CholeskyTask::Syrk { k, i } => {
            let aik = a.tile(i, k).clone();
            dsyrk(Uplo::Lower, Trans::No, -1.0, &aik, 1.0, a.tile_mut(i, i));
        }
        CholeskyTask::Gemm { k, i, j } => {
            let aik = a.tile(i, k).clone();
            let ajk = a.tile(j, k).clone();
            dgemm(
                Trans::No,
                Trans::Yes,
                -1.0,
                &aik,
                &ajk,
                1.0,
                a.tile_mut(i, j),
            );
        }
    }
    Ok(())
}

/// Sequential tile Cholesky: factors the lower triangle of `a` in place
/// (`A = L L^T`); tiles strictly above the diagonal are not referenced.
pub fn factor(a: &mut TiledMatrix) -> Result<(), NotPositiveDefinite> {
    assert_eq!(a.mt(), a.nt(), "Cholesky requires a square tile grid");
    for task in task_stream(a.nt()) {
        execute_task(a, task)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::spd;
    use crate::norms::frobenius;
    use crate::verify::cholesky_residual;
    use crate::Matrix;

    #[test]
    fn task_stream_counts() {
        // nt=1: 1 potrf. nt=3: 3 potrf + 3 trsm + 3 syrk + 1 gemm.
        assert_eq!(task_stream(1).len(), 1);
        let t3 = task_stream(3);
        let count = |label: &str| t3.iter().filter(|t| t.label() == label).count();
        assert_eq!(count("dpotrf"), 3);
        assert_eq!(count("dtrsm"), 3);
        assert_eq!(count("dsyrk"), 3);
        assert_eq!(count("dgemm"), 1);
    }

    #[test]
    fn task_stream_general_count_formula() {
        // total = nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk
        //         + nt(nt-1)(nt-2)/6 gemm.
        for nt in 2..8 {
            let n = task_stream(nt).len();
            let expect = nt + nt * (nt - 1) / 2 * 2 + nt * (nt - 1) * (nt - 2) / 6;
            assert_eq!(n, expect, "nt={nt}");
        }
        assert_eq!(task_stream(1).len(), 1);
    }

    #[test]
    fn factorization_matches_unblocked() {
        let n = 24;
        let a0 = spd(n, 81);
        // Tile factorization.
        let mut tiled = TiledMatrix::from_matrix(&a0, 8);
        factor(&mut tiled).unwrap();
        // Unblocked reference.
        let mut reference = a0.clone();
        crate::blas::dpotf2(&mut reference).unwrap();
        let lt = tiled.to_matrix();
        for j in 0..n {
            for i in j..n {
                assert!(
                    (lt[(i, j)] - reference[(i, j)]).abs() < 1e-10,
                    "L mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn residual_is_small() {
        let n = 30;
        let a0 = spd(n, 82);
        let mut tiled = TiledMatrix::from_matrix(&a0, 7); // edge tiles too
        factor(&mut tiled).unwrap();
        let res = cholesky_residual(&a0, &tiled);
        assert!(res < 1e-13, "residual {res}");
    }

    #[test]
    fn single_tile_case() {
        let a0 = spd(5, 83);
        let mut tiled = TiledMatrix::from_matrix(&a0, 16);
        factor(&mut tiled).unwrap();
        assert!(cholesky_residual(&a0, &tiled) < 1e-13);
    }

    #[test]
    fn indefinite_matrix_errors() {
        let mut m = Matrix::identity(8);
        m[(4, 4)] = -1.0;
        let mut tiled = TiledMatrix::from_matrix(&m, 4);
        assert!(factor(&mut tiled).is_err());
    }

    #[test]
    fn factor_l_reconstructs_diagonal_weight() {
        let n = 16;
        let a0 = spd(n, 84);
        let mut tiled = TiledMatrix::from_matrix(&a0, 4);
        factor(&mut tiled).unwrap();
        // ||L||_F should be on the order of sqrt(||A||_F).
        let l = tiled.to_matrix();
        assert!(frobenius(&l) > 0.0);
    }
}
