//! Compare the three scheduler profiles (QUARK / StarPU / OmpSs) and the
//! pluggable policies on one workload — entirely in simulation, from a
//! single calibration. This is "analyze both the application and the
//! underlying scheduler without the need to interact with the large code
//! base of either" (paper SS III).
//!
//! ```text
//! cargo run --release --example scheduler_shootout
//! ```

use supersim::prelude::*;

fn main() {
    let (n, nb, workers) = (1200, 120, 8);

    // One calibration from a small real run (single worker: clean timings).
    let cal_run = Scenario::new(Algorithm::Qr)
        .workers(1)
        .n(480)
        .tile_size(nb)
        .seed(17)
        .run_real();
    let cal = calibrate(&cal_run.trace, FitOptions::default());
    println!(
        "calibrated {} kernel classes from a {:.2}s real run\n",
        cal.reports.len(),
        cal_run.seconds
    );

    println!("simulated QR n={n} nb={nb} on {workers} virtual workers:");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "scheduler", "pred[s]", "GFLOP/s", "utilization"
    );
    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let sim = Scenario::new(Algorithm::Qr)
            .scheduler(kind)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(cal.registry.clone())
            .seed(23)
            .run_sim();
        let stats = TraceStats::of(&sim.trace);
        println!(
            "{:>10} {:>12.3} {:>12.2} {:>13.1}%",
            kind.name(),
            sim.predicted_seconds,
            sim.gflops,
            stats.utilization * 100.0
        );
    }
    println!("\n(same DAG, same kernel models -- differences are pure scheduling policy)");
}
