//! The paper's Fig. 5 scheduling race, live.
//!
//! Three tasks on two workers: A (1s) and B (2s) are independent; C (0.5s)
//! depends on A. In a correct simulation C starts the moment A completes
//! (t = 1.0). Without mitigation, B — at the front of the Task Execution
//! Queue — usually returns before C has inserted itself, so C reads an
//! already-advanced clock and lands at t = 2.0: the trace is wrong.
//!
//! ```text
//! cargo run --release --example race_condition
//! ```

use std::sync::Arc;
use supersim::prelude::*;
use supersim::trace::ascii;

fn run(mitigation: RaceMitigation) -> Trace {
    let mut models = ModelRegistry::new();
    models.insert("A", KernelModel::constant(1.0));
    models.insert("B", KernelModel::constant(2.0));
    models.insert("C", KernelModel::constant(0.5));
    let session: Arc<SimSession> = SimSession::new(
        models,
        SimConfig {
            seed: 1,
            mitigation,
            ..SimConfig::default()
        },
    );

    let rt = Runtime::new(RuntimeConfig::simple(2));
    session.attach_quiesce(rt.probe());
    for (label, accesses) in [
        ("A", vec![Access::write(DataId(0))]),
        ("B", vec![Access::write(DataId(1))]),
        ("C", vec![Access::read(DataId(0))]),
    ] {
        let s = session.clone();
        rt.submit(TaskDesc::new(label, accesses, move |ctx| {
            s.run_kernel(ctx, label)
        }));
    }
    rt.seal();
    rt.wait_all().unwrap();
    session.finish_trace(2)
}

fn main() {
    for mitigation in [
        RaceMitigation::Quiesce,
        RaceMitigation::sleep_yield_default(),
        RaceMitigation::None,
    ] {
        let trace = run(mitigation);
        let c = trace.spans().iter().find(|e| e.kernel == "C").unwrap();
        let verdict = if (c.start - 1.0).abs() < 1e-9 {
            "correct: C starts when A completes"
        } else {
            "RACE: C read an already-advanced clock"
        };
        println!(
            "mitigation = {:<12} C.start = {:.2}  makespan = {:.2}   [{verdict}]",
            mitigation.name(),
            c.start,
            trace.makespan()
        );
        print!("{}", ascii::render(&trace, 64));
        println!();
    }
}
