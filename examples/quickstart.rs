//! Quickstart: the paper's core loop in ~40 lines.
//!
//! 1. Run the tile Cholesky *for real* under the QUARK scheduler profile
//!    (computing an actual factorization, verified numerically).
//! 2. Fit per-kernel duration distributions from that run's trace.
//! 3. Replace every kernel with the simulated-kernel protocol and "run"
//!    the algorithm again — predicting the execution time without doing
//!    the math.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use supersim::prelude::*;

fn main() {
    // One worker: on this crate's reference host (a single CPU core) a
    // real run with W > 1 workers time-shares the core, which a simulation
    // of a true W-core machine rightly does not predict. On a real W-core
    // machine, use W workers (the paper used 48 on a 48-core node).
    let (n, nb, workers) = (720, 90, 1);

    println!("real run: tile Cholesky n={n} nb={nb} workers={workers} (quark)");
    let scenario = Scenario::new(Algorithm::Cholesky)
        .scheduler(SchedulerKind::Quark)
        .workers(workers)
        .n(n)
        .tile_size(nb);
    let real = scenario.clone().seed(42).run_real();
    println!(
        "  elapsed {:.3}s  ({:.2} GFLOP/s), residual {:.2e} -> numerically correct",
        real.seconds, real.gflops, real.residual
    );

    println!("calibrating kernel models from the real trace...");
    let cal = calibrate(&real.trace, FitOptions::default());
    for (label, report) in &cal.reports {
        println!(
            "  {label:<8} {} samples -> {} (mean {:.3} ms)",
            report.samples,
            report.family,
            report.mean * 1e3
        );
    }

    println!("simulated run (same scheduler, same DAG, no computation):");
    let sim = scenario
        .clone()
        .models(cal.registry.clone())
        .seed(7)
        .run_sim();
    println!(
        "  predicted {:.3}s  ({:.2} GFLOP/s), simulation itself took {:.3}s wall",
        sim.predicted_seconds, sim.gflops, sim.wall_seconds
    );
    let err = (sim.predicted_seconds - real.seconds) / real.seconds * 100.0;
    println!("prediction error: {err:+.1}%");

    // Model the per-task scheduler overhead from the trace gaps (§VII of
    // the paper: the main source of its small-size error).
    use supersim::calibrate::estimate_overhead;
    use supersim::core::SimConfig;
    let overhead = estimate_overhead(&real.trace, 0.005)
        .map(|e| e.median_gap)
        .unwrap_or(0.0);
    let sim2 = scenario
        .models(cal.registry)
        .config(SimConfig {
            seed: 7,
            overhead_per_task: overhead,
            ..SimConfig::default()
        })
        .run_sim();
    let err2 = (sim2.predicted_seconds - real.seconds) / real.seconds * 100.0;
    println!(
        "with {:.1} µs/task overhead modeled: predicted {:.3}s, error {err2:+.1}%",
        overhead * 1e6,
        sim2.predicted_seconds
    );

    let cmp = TraceComparison::compare(&real.trace, &sim.trace);
    println!("trace comparison: {}", cmp.summary());
}
