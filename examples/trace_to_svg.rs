//! Produce the paper's Fig. 6/7 pair on your machine: a real QR trace and
//! the simulated trace of the same configuration, rendered to SVG at the
//! same time scale, plus an ASCII preview and similarity metrics.
//!
//! ```text
//! cargo run --release --example trace_to_svg [-- out_dir]
//! ```

use supersim::prelude::*;
use supersim::trace::ascii;
use supersim::trace::svg::{render, SvgOptions};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target".to_string());
    let (n, nb, workers) = (720, 90, 4);

    println!("real QR run: n={n} nb={nb} workers={workers}");
    let scenario = Scenario::new(Algorithm::Qr)
        .workers(workers)
        .n(n)
        .tile_size(nb);
    let real = scenario.clone().seed(3).run_real();
    println!("  {:.3}s, residual {:.1e}", real.seconds, real.residual);

    let cal = calibrate(&real.trace, FitOptions::default());
    let sim = scenario.seed(31).models(cal.registry).run_sim();
    println!("  simulated: {:.3}s predicted", sim.predicted_seconds);

    let cmp = TraceComparison::compare(&real.trace, &sim.trace);
    println!("  {}", cmp.summary());

    println!("\nreal trace:");
    print!("{}", ascii::render(&real.trace, 72));
    println!("\nsimulated trace:");
    print!("{}", ascii::render(&sim.trace, 72));

    // SVG pair with a shared time axis, like the paper.
    let span = real.trace.t_max().max(sim.trace.t_max());
    let opts = |title: &str| SvgOptions {
        time_span: Some(span),
        title: title.to_string(),
        ..SvgOptions::default()
    };
    let real_path = format!("{out}/qr_trace_real.svg");
    let sim_path = format!("{out}/qr_trace_sim.svg");
    std::fs::write(&real_path, render(&real.trace, &opts("Real QR trace"))).unwrap();
    std::fs::write(&sim_path, render(&sim.trace, &opts("Simulated QR trace"))).unwrap();
    println!("\nwrote {real_path} and {sim_path}");
}
