//! Host-independent virtual platforms: predict strong scaling of the tile
//! QR factorization on 1..64 virtual workers — including the paper's
//! 48-core testbed configuration (n = 3960, nb = 180) — from one small
//! real calibration run, all on whatever machine you have.
//!
//! ```text
//! cargo run --release --example virtual_platform
//! ```

use supersim::prelude::*;

fn main() {
    // Calibrate from a small real run.
    let (cal_n, nb) = (720, 180);
    println!("calibrating from a real QR run (n={cal_n}, nb={nb})...");
    let real = Scenario::new(Algorithm::Qr)
        .workers(1)
        .n(cal_n)
        .tile_size(nb)
        .seed(9)
        .run_real();
    println!(
        "  done in {:.2}s, residual {:.1e}",
        real.seconds, real.residual
    );
    let cal = calibrate(&real.trace, FitOptions::default());

    // Predict the paper's platform: n=3960, nb=180, sweeping workers.
    let n = 3960;
    println!("simulated strong scaling of QR n={n} nb={nb} (22x22 tiles, 2024 tasks):");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "workers", "pred[s]", "GFLOP/s", "speedup"
    );
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8, 16, 32, 48, 64] {
        let sim = Scenario::new(Algorithm::Qr)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(cal.registry.clone())
            .seed(workers as u64)
            .run_sim();
        let base = *t1.get_or_insert(sim.predicted_seconds);
        println!(
            "{:>8} {:>12.3} {:>12.2} {:>9.1}x",
            workers,
            sim.predicted_seconds,
            sim.gflops,
            base / sim.predicted_seconds
        );
    }
    println!("(kernel durations are modeled from this host; the *scaling shape* is the point)");
}
