//! The paper's motivating use case (SS VI-B): autotuning via simulation.
//!
//! Choosing the tile size nb is a classic tuning problem: small tiles
//! expose parallelism but pay more scheduler overhead and slower kernels;
//! large tiles starve workers. Instead of running the full factorization
//! for every candidate (expensive), run one cheap real calibration per
//! candidate and *simulate* the full problem, then verify the winner with
//! a real run.
//!
//! This version drives the candidates through the sweep orchestrator
//! ([`SweepSpec`], DESIGN.md §10): the per-candidate calibrations become a
//! `SweepModels::PerTileSize` database built once up front, and the
//! candidate × seed matrix runs across host cores with the report's
//! `--autotune`-style argmin section picking the winner. Sweeping several
//! seeds *per tile size* also fixes a bias in the original hand-rolled
//! loop, which simulated each candidate under a different seed
//! (`seed: nb as u64`) — so part of the observed ranking was just
//! duration-sampling luck. The sweep scores every candidate on the same
//! seed set and compares mean makespans.
//!
//! The original hand-rolled loop this example replaces, kept for
//! reference:
//!
//! ```ignore
//! let mut best: Option<(usize, f64)> = None;
//! for &nb in &candidates {
//!     let cal_n = (n / 2).max(3 * nb);
//!     let cal_run = Scenario::new(Algorithm::Cholesky)
//!         .workers(workers).n(cal_n).tile_size(nb).seed(5)
//!         .run_real();
//!     let cal = calibrate(&cal_run.trace, FitOptions::default());
//!     let overhead = estimate_overhead(&cal_run.trace, 0.005)
//!         .map(|e| e.median_gap).unwrap_or(0.0);
//!     let sim = Scenario::new(Algorithm::Cholesky)
//!         .workers(workers).n(n).tile_size(nb)
//!         .models(cal.registry)
//!         .config(SimConfig { seed: nb as u64, overhead_per_task: overhead,
//!                             ..SimConfig::default() })
//!         .run_sim();
//!     if best.is_none_or(|(_, t)| sim.predicted_seconds < t) {
//!         best = Some((nb, sim.predicted_seconds));
//!     }
//! }
//! ```
//!
//! ```text
//! cargo run --release --example autotune_tile_size
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use supersim::calibrate::estimate_overhead;
use supersim::prelude::*;
use supersim::workloads::sweep::{SweepModels, SweepSpec};

fn main() {
    let n = 1440; // the "production" problem size
    let workers = 2;
    let candidates = [60usize, 90, 120, 180, 240];
    let seeds: Vec<u64> = (1..=5).collect();

    println!("autotuning tile size for Cholesky n={n} on {workers} workers (quark)");

    // Phase 1: one cheap real calibration per candidate — at a fraction of
    // the problem size, but at least 3x3 tiles so every kernel class
    // (incl. dgemm, which first appears at NT >= 3) gets samples to fit a
    // model from. Half the production size keeps the calibration's cache
    // behaviour close to the real problem's (paper §V-B1: kernel durations
    // depend on cache residency, which is why the paper calibrates from
    // "the actual execution of the algorithm" rather than isolated
    // timing). The fitted registries form the sweep's shared read-only
    // model database, built once before any simulation starts.
    let mut models: BTreeMap<usize, Arc<ModelRegistry>> = BTreeMap::new();
    let mut overheads = Vec::new();
    for &nb in &candidates {
        let cal_n = (n / 2).max(3 * nb);
        let cal_run = Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(cal_n)
            .tile_size(nb)
            .seed(5)
            .run_real();
        let cal = calibrate(&cal_run.trace, FitOptions::default());
        // Model the per-task scheduler overhead too: with small tiles the
        // task count explodes and dispatch cost dominates — ignoring it
        // would make the autotuner wrongly favor tiny tiles (this is the
        // paper's own §VII diagnosis of its small-size errors).
        let overhead = estimate_overhead(&cal_run.trace, 0.005)
            .map(|e| e.median_gap)
            .unwrap_or(0.0);
        println!(
            "  calibrated nb={nb:<4} from n={cal_n} ({:.3}s real, overhead {:.2} µs/task)",
            cal_run.seconds,
            overhead * 1e6
        );
        models.insert(nb, Arc::new(cal.registry));
        overheads.push(overhead);
    }
    // The sweep applies one overhead to every cell. Take the median of
    // the per-candidate estimates: gap-based estimation occasionally
    // produces a wild outlier on a loaded host, and a single bad fit must
    // not skew every cell's dispatch cost.
    overheads.sort_by(f64::total_cmp);
    let overhead = overheads[overheads.len() / 2];

    // Phase 2: the candidate x seed matrix as one sweep. Every candidate
    // is simulated under the *same* seed set and scored on mean makespan,
    // so duration-sampling noise averages out instead of silently biasing
    // the ranking.
    let spec = SweepSpec {
        algorithms: vec![Algorithm::Cholesky],
        orders: vec![n],
        tile_sizes: candidates.to_vec(),
        worker_counts: vec![workers],
        seeds: seeds.clone(),
        models: SweepModels::PerTileSize(models),
        overhead_per_task: overhead,
        autotune: Some("nb".to_string()),
        ..SweepSpec::default()
    };
    let outcome = spec.run(0);
    let report = &outcome.report;
    println!(
        "\nswept {} cells ({} candidates x {} seeds) on {} threads in {:.3}s",
        report.cells_total,
        candidates.len(),
        seeds.len(),
        outcome.jobs,
        outcome.wall_seconds
    );

    let tune = report.autotune.as_ref().expect("autotune section");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "nb", "mean pred[s]", "min pred[s]", "max pred[s]"
    );
    for g in &tune.groups {
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>14.3}",
            g.value, g.mean_makespan, g.min_makespan, g.max_makespan
        );
    }
    let nb: usize = tune.best.parse().expect("nb group values are numeric");
    let predicted = tune
        .groups
        .iter()
        .find(|g| g.value == tune.best)
        .unwrap()
        .mean_makespan;
    println!(
        "\npredicted best tile size: nb={nb} (mean {predicted:.3}s over {} seeds)",
        seeds.len()
    );

    // Phase 3: verify the ranking with real runs.
    println!("verifying the full sweep with real runs...");
    let mut real_best: Option<(usize, f64)> = None;
    for &cand in &candidates {
        let real = Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(n)
            .tile_size(cand)
            .seed(6)
            .run_real();
        println!(
            "  nb={cand:<4} real {:.3}s ({:.2} GFLOP/s)",
            real.seconds, real.gflops
        );
        if real_best.is_none_or(|(_, t)| real.seconds < t) {
            real_best = Some((cand, real.seconds));
        }
    }
    let (real_nb, real_t) = real_best.unwrap();
    println!(
        "\nsimulation picked nb={nb} (predicted {predicted:.3}s); the true best is nb={real_nb} ({real_t:.3}s)"
    );
    println!(
        "(absolute predictions drift across sizes because kernel speed depends on cache\n\
         residency — paper §V-B1; the *ranking*, which is what autotuning needs, is cheap\n\
         to obtain: five calibrations at n/2 instead of five full-size real runs)"
    );
}
