//! The paper's motivating use case (SS VI-B): autotuning via simulation.
//!
//! Choosing the tile size nb is a classic tuning problem: small tiles
//! expose parallelism but pay more scheduler overhead and slower kernels;
//! large tiles starve workers. Instead of running the full factorization
//! for every candidate (expensive), run one cheap real calibration per
//! candidate and *simulate* the full problem, then verify the winner with
//! a real run.
//!
//! ```text
//! cargo run --release --example autotune_tile_size
//! ```

use supersim::calibrate::estimate_overhead;
use supersim::core::SimConfig;
use supersim::prelude::*;

fn main() {
    let n = 1440; // the "production" problem size
    let workers = 2;
    let candidates = [60usize, 90, 120, 180, 240];

    println!("autotuning tile size for Cholesky n={n} on {workers} workers (quark)");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "nb", "cal[s]", "sim pred[s]", "pred GF/s"
    );

    let mut best: Option<(usize, f64)> = None;
    for &nb in &candidates {
        // Cheap calibration run at a fraction of the problem size — but at
        // least 3x3 tiles, so every kernel class (incl. dgemm, which first
        // appears at NT >= 3) gets samples to fit a model from. Half the
        // production size keeps the calibration's cache behaviour close to
        // the real problem's (paper §V-B1: kernel durations depend on
        // cache residency, which is why the paper calibrates from "the
        // actual execution of the algorithm" rather than isolated timing).
        let cal_n = (n / 2).max(3 * nb);
        let cal_run = Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(cal_n)
            .tile_size(nb)
            .seed(5)
            .run_real();
        let cal = calibrate(&cal_run.trace, FitOptions::default());
        // Model the per-task scheduler overhead too: with small tiles the
        // task count explodes and dispatch cost dominates — ignoring it
        // would make the autotuner wrongly favor tiny tiles (this is the
        // paper's own §VII diagnosis of its small-size errors).
        let overhead = estimate_overhead(&cal_run.trace, 0.005)
            .map(|e| e.median_gap)
            .unwrap_or(0.0);
        // Simulate the full size.
        let sim = Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(cal.registry)
            .config(SimConfig {
                seed: nb as u64,
                overhead_per_task: overhead,
                ..SimConfig::default()
            })
            .run_sim();
        println!(
            "{:>6} {:>12.3} {:>14.3} {:>12.2}",
            nb, cal_run.seconds, sim.predicted_seconds, sim.gflops
        );
        if best.is_none_or(|(_, t)| sim.predicted_seconds < t) {
            best = Some((nb, sim.predicted_seconds));
        }
    }

    let (nb, predicted) = best.unwrap();
    println!("\npredicted best tile size: nb={nb} ({predicted:.3}s)");
    println!("verifying the full sweep with real runs...");
    let mut real_best: Option<(usize, f64)> = None;
    for &cand in &candidates {
        let real = Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(n)
            .tile_size(cand)
            .seed(6)
            .run_real();
        println!(
            "  nb={cand:<4} real {:.3}s ({:.2} GFLOP/s)",
            real.seconds, real.gflops
        );
        if real_best.is_none_or(|(_, t)| real.seconds < t) {
            real_best = Some((cand, real.seconds));
        }
    }
    let (real_nb, real_t) = real_best.unwrap();
    println!(
        "\nsimulation picked nb={nb} (predicted {predicted:.3}s); the true best is nb={real_nb} ({real_t:.3}s)"
    );
    println!(
        "(absolute predictions drift across sizes because kernel speed depends on cache\n\
         residency — paper §V-B1; the *ranking*, which is what autotuning needs, is cheap\n\
         to obtain: five calibrations at n/2 instead of five full-size real runs)"
    );
}
