//! Multi-node cluster simulation acceptance tests (DESIGN.md §6).
//!
//! The control experiment: a distributed run over a zero-cost
//! interconnect must reproduce the single-node run of the same total
//! width *bit-for-bit* — owner-computes pinning constrains placement,
//! not virtual time, as long as no node's ready backlog exceeds its
//! lane count. And a real interconnect must cost something: makespan
//! strictly increases with link latency.

use std::collections::HashMap;
use std::sync::Arc;
use supersim::cluster::TRANSFER_LABEL;
use supersim::prelude::*;

const N: usize = 120;
const NB: usize = 20;
const SEED: u64 = 42;

/// Log-normal kernel models with a warm-up penalty (factor != 1), so
/// these tests also cover the rank-keyed warm-up plan: with
/// arrival-order warm-up the distributed and single-node runs would warm
/// different tasks and nothing below could hold.
fn models() -> ModelRegistry {
    let mut m = ModelRegistry::new();
    for l in Algorithm::Cholesky.labels() {
        m.insert(
            *l,
            KernelModel::with_warmup(Dist::log_normal(-6.0, 0.3).unwrap(), 2.0),
        );
    }
    m
}

fn session() -> Arc<SimSession> {
    SimSession::new(
        models(),
        SimConfig {
            seed: SEED,
            ..SimConfig::default()
        },
    )
}

fn distributed(interconnect: Arc<dyn Interconnect>) -> ClusterRun {
    Scenario::new(Algorithm::Cholesky)
        .n(N)
        .tile_size(NB)
        .session(session())
        .cluster(ClusterSpec::new(4, 8))
        .interconnect(interconnect)
        .placement(Arc::new(BlockCyclic::new(2, 2)))
        .run_cluster()
}

/// Compute events only (transfers excluded), as an order-free multiset
/// of exact virtual intervals. Task ids shift between the runs (transfer
/// tasks consume ids), so identity is (kernel, start, end) bits.
fn compute_multiset(t: &Trace) -> HashMap<(String, u64, u64), usize> {
    let mut m = HashMap::new();
    for e in t.spans() {
        if e.kernel != TRANSFER_LABEL {
            *m.entry((e.kernel.clone(), e.start.to_bits(), e.end.to_bits()))
                .or_insert(0) += 1;
        }
    }
    m
}

#[test]
fn zero_cost_interconnect_reproduces_single_node_run() {
    let dist = distributed(Arc::new(ZeroCost));
    let single = Scenario::new(Algorithm::Cholesky)
        .workers(32)
        .n(N)
        .tile_size(NB)
        .session(session())
        .run_sim();

    // 4 nodes x 8 workers == 32 workers; free transfers must be invisible.
    assert!(
        dist.transfers > 0,
        "block-cyclic run crosses node boundaries"
    );
    assert_eq!(
        dist.trace.makespan().to_bits(),
        single.trace.makespan().to_bits(),
        "distributed {} vs single-node {}",
        dist.trace.makespan(),
        single.trace.makespan()
    );
    assert_eq!(
        compute_multiset(&dist.trace),
        compute_multiset(&single.trace),
        "compute tasks must occupy identical virtual intervals"
    );
}

#[test]
fn hockney_makespan_strictly_increases_with_latency() {
    let mut last = distributed(Arc::new(ZeroCost)).trace.makespan();
    for latency in [1e-4, 1e-3, 1e-2] {
        let run = distributed(Arc::new(Hockney::new(latency, 1e10)));
        let makespan = run.trace.makespan();
        assert!(
            makespan > last,
            "latency {latency}: makespan {makespan} not above {last}"
        );
        last = makespan;
    }
}

#[test]
fn shared_link_never_beats_contention_free_hockney() {
    // Same cost model, one NIC lane instead of four: serialization can
    // only delay completion.
    let hockney = distributed(Arc::new(Hockney::new(1e-3, 1e9)));
    let shared = distributed(Arc::new(SharedLink::new(1e-3, 1e9)));
    assert_eq!(hockney.transfers, shared.transfers);
    assert!(
        shared.trace.makespan() >= hockney.trace.makespan(),
        "shared {} vs hockney {}",
        shared.trace.makespan(),
        hockney.trace.makespan()
    );
}

#[test]
fn transfers_occupy_nic_lanes_only() {
    let run = distributed(Arc::new(Hockney::new(1e-4, 1e9)));
    let spec = ClusterSpec::new(4, 8);
    for e in run.trace.spans() {
        let is_nic = (0..4).any(|node| {
            let (lo, hi) = spec.nic_range(node);
            (lo..hi).contains(&e.worker)
        });
        if e.kernel == TRANSFER_LABEL {
            assert!(is_nic, "transfer on compute lane {}", e.worker);
        } else {
            assert!(
                !is_nic,
                "compute task {} on NIC lane {}",
                e.kernel, e.worker
            );
        }
    }
}

#[test]
fn cluster_runs_are_deterministic() {
    for make in [
        || -> Arc<dyn Interconnect> { Arc::new(Hockney::new(1e-4, 1e9)) },
        || -> Arc<dyn Interconnect> { Arc::new(SharedLink::new(1e-4, 1e9)) },
    ] {
        let a = distributed(make());
        let b = distributed(make());
        let cmp = TraceComparison::compare(&a.trace, &b.trace);
        assert_eq!(cmp.matched_tasks, a.trace.len());
        assert_eq!(cmp.makespan_rel_error, 0.0, "makespans differ");
        assert_eq!(cmp.mean_start_shift, 0.0, "start times differ");
    }
}
