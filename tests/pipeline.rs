//! End-to-end pipeline tests: real run -> calibrate -> simulate -> compare,
//! for every scheduler profile and algorithm (the paper's full methodology
//! at test-friendly sizes).

use supersim::prelude::*;

fn pipeline(alg: Algorithm, kind: SchedulerKind) -> (RealRun, SimRun) {
    let (n, nb, workers) = (120, 24, 1);
    let real = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(1234)
        .run_real();
    assert!(
        real.residual < 1e-10,
        "{alg:?}/{kind:?}: bad residual {}",
        real.residual
    );
    let cal = calibrate(&real.trace, FitOptions::default());
    let sim = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(cal.registry)
        .seed(99)
        .run_sim();
    (real, sim)
}

#[test]
fn full_pipeline_all_schedulers_cholesky() {
    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let (real, sim) = pipeline(Algorithm::Cholesky, kind);
        let cmp = TraceComparison::compare(&real.trace, &sim.trace);
        assert!(cmp.same_kernel_population, "{kind:?}: population mismatch");
        assert_eq!(cmp.matched_tasks, real.trace.len());
        // Single worker, calibrated from the same run: the prediction must
        // be in the right ballpark even at this tiny size.
        assert!(
            cmp.makespan_abs_error() < 0.6,
            "{kind:?}: error {:.1}%",
            cmp.makespan_rel_error * 100.0
        );
        assert!(sim.trace.validate(1e-9).is_ok());
    }
}

#[test]
fn full_pipeline_all_schedulers_qr() {
    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let (real, sim) = pipeline(Algorithm::Qr, kind);
        let cmp = TraceComparison::compare(&real.trace, &sim.trace);
        assert!(cmp.same_kernel_population, "{kind:?}: population mismatch");
        assert!(cmp.makespan_abs_error() < 0.6, "{kind:?}");
    }
}

#[test]
fn full_pipeline_lu_extension() {
    let (real, sim) = pipeline(Algorithm::Lu, SchedulerKind::Quark);
    let cmp = TraceComparison::compare(&real.trace, &sim.trace);
    assert!(cmp.same_kernel_population);
    assert!(cmp.makespan_abs_error() < 0.6);
}

#[test]
fn moderate_size_prediction_is_accurate() {
    // The headline accuracy claim at a size where kernels dominate
    // overhead: error within ~15% (paper: worst case 16%, typical < 5%).
    let (n, nb, workers) = (480, 80, 1);
    let real = Scenario::new(Algorithm::Cholesky)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(55)
        .run_real();
    let cal = calibrate(&real.trace, FitOptions::default());
    let sim = Scenario::new(Algorithm::Cholesky)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(cal.registry)
        .seed(3)
        .run_sim();
    let err = (sim.predicted_seconds - real.seconds).abs() / real.seconds;
    assert!(err < 0.15, "prediction error {:.1}%", err * 100.0);
}

#[test]
fn calibration_database_round_trip_through_simulation() {
    let (n, nb) = (96, 24);
    let real = Scenario::new(Algorithm::Cholesky)
        .workers(1)
        .n(n)
        .tile_size(nb)
        .seed(8)
        .run_real();
    let cal = calibrate(&real.trace, FitOptions::default());
    let db = CalibrationDb::new("integration", n, nb, 1, cal);
    let json = db.to_json();
    let back = CalibrationDb::from_json(&json).unwrap();
    let sim = Scenario::new(Algorithm::Cholesky)
        .workers(1)
        .n(n)
        .tile_size(nb)
        .models(back.calibration.registry)
        .seed(4)
        .run_sim();
    assert!(sim.predicted_seconds > 0.0);
}
