//! The offline DES baseline and the in-the-loop simulator must agree
//! exactly on workloads where scheduling policy cannot matter (chains,
//! single worker), and stay close on parallel workloads with FIFO-like
//! policies.

use supersim::des::{simulate as des_simulate, DesPolicy};
use supersim::prelude::*;
use supersim::workloads::synthetic::{chain, fork_join, layered, models_for, submit, to_graph};

fn inloop_makespan(tasks: &[supersim::workloads::synthetic::SynthTask], workers: usize) -> f64 {
    let session = SimSession::new(models_for(tasks), SimConfig::default());
    let rt = Runtime::new(RuntimeConfig::simple(workers));
    session.attach_quiesce(rt.probe());
    submit(&rt, tasks, &ExecMode::Simulated(session.clone()), 1.0);
    rt.seal();
    rt.wait_all().unwrap();
    session.virtual_now()
}

#[test]
fn chain_agrees_exactly() {
    let tasks = chain(10, 0.3);
    let graph = to_graph(&tasks);
    let des = des_simulate(&graph, 4, DesPolicy::Fifo, |t| graph.node(t).weight);
    let inloop = inloop_makespan(&tasks, 4);
    assert!(
        (des.makespan - inloop).abs() < 1e-9,
        "{} vs {}",
        des.makespan,
        inloop
    );
}

#[test]
fn single_worker_agrees_exactly() {
    // One worker: any non-idling schedule has makespan = total work.
    let tasks = layered(4, 5, 2, 0.02, 17);
    let graph = to_graph(&tasks);
    let des = des_simulate(&graph, 1, DesPolicy::Fifo, |t| graph.node(t).weight);
    let inloop = inloop_makespan(&tasks, 1);
    assert!(
        (des.makespan - inloop).abs() < 1e-9,
        "DES {} vs in-loop {}",
        des.makespan,
        inloop
    );
}

#[test]
fn fork_join_agrees_exactly() {
    let tasks = fork_join(6, 0.5);
    let graph = to_graph(&tasks);
    let des = des_simulate(&graph, 6, DesPolicy::Fifo, |t| graph.node(t).weight);
    let inloop = inloop_makespan(&tasks, 6);
    assert!((des.makespan - inloop).abs() < 1e-9);
}

#[test]
fn parallel_layered_within_band() {
    // With parallelism and dispatch-order freedom the two simulators may
    // legitimately diverge, but both are greedy non-idling schedules: by
    // Graham's bound each is within 2x of optimal, so they are within 2x
    // of each other.
    let tasks = layered(6, 8, 2, 0.01, 23);
    let graph = to_graph(&tasks);
    let des = des_simulate(&graph, 4, DesPolicy::Fifo, |t| graph.node(t).weight);
    let inloop = inloop_makespan(&tasks, 4);
    let ratio = des.makespan / inloop;
    assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
}
