//! End-to-end tests of the `supersim` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_supersim"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("supersim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn info_lists_schedulers() {
    let out = bin().arg("info").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("quark"));
    assert!(text.contains("starpu"));
    assert!(text.contains("ompss"));
    assert!(text.contains("cholesky"));
}

#[test]
fn no_args_exits_with_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("commands:"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn dag_command_emits_stats_and_dot() {
    let dot_path = tmpdir().join("qr.dot");
    let out = bin()
        .args(["dag", "--alg", "qr", "--nt", "4", "--dot"])
        .arg(&dot_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("30 tasks"), "{text}");
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph"));
    std::fs::remove_file(&dot_path).ok();
}

#[test]
fn real_then_sim_round_trip() {
    let dir = tmpdir();
    let cal = dir.join("cal.json");
    let out = bin()
        .args([
            "real",
            "--alg",
            "cholesky",
            "--n",
            "96",
            "--nb",
            "24",
            "--calibration-out",
        ])
        .arg(&cal)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("residual"), "{text}");

    let svg = dir.join("trace.svg");
    let chrome = dir.join("trace.json");
    let out = bin()
        .args([
            "sim",
            "--alg",
            "cholesky",
            "--n",
            "192",
            "--nb",
            "24",
            "--workers",
            "4",
        ])
        .args(["--calibration"])
        .arg(&cal)
        .args(["--svg"])
        .arg(&svg)
        .args(["--chrome"])
        .arg(&chrome)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("predicted"), "{text}");
    assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    assert!(!json.as_array().unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_reports_error_percentage() {
    let out = bin()
        .args([
            "predict",
            "--alg",
            "cholesky",
            "--n",
            "120",
            "--nb",
            "30",
            "--overhead",
            "auto",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error:"), "{text}");
    assert!(text.contains("overhead:"), "{text}");
}

#[cfg(feature = "metrics")]
#[test]
fn metrics_dumps_instrumented_snapshot() {
    let dir = tmpdir();
    let chrome = dir.join("metrics-trace.json");
    let out = bin()
        .args([
            "metrics",
            "--workload",
            "cholesky",
            "--n",
            "192",
            "--nb",
            "24",
            "--workers",
            "4",
            "--chrome",
        ])
        .arg(&chrome)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snap: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap()).unwrap();
    let counter = |name: &str| {
        snap["counters"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["name"] == name)
            .map(|c| c["value"].as_u64().unwrap())
    };
    // Both wakeup modes ran (the default --mode both), each counted under
    // its own name.
    assert!(counter("teq.wakeup.targeted").unwrap() > 0);
    assert!(counter("teq.wakeup.broadcast").unwrap() > 0);
    assert!(counter("teq.insert.count").unwrap() > 0);
    assert!(counter("sim.kernels.count").unwrap() > 0);
    // The parked-wait histogram is timed unconditionally, so a non-trivial
    // run always lands samples in it.
    let wait = snap["histograms"]
        .as_array()
        .unwrap()
        .iter()
        .find(|h| h["name"] == "teq.wait.parked.ns")
        .expect("teq.wait.parked.ns histogram present");
    assert!(wait["count"].as_u64().unwrap() > 0);
    assert!(wait["sum_ns"].as_u64().unwrap() > 0);
    // The chrome export gained counter tracks alongside the task events.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    let arr = trace.as_array().unwrap();
    assert!(arr.iter().any(|e| e["ph"] == "X"));
    assert!(arr
        .iter()
        .any(|e| e["ph"] == "C" && e["name"] == "running_tasks"));
    assert!(arr
        .iter()
        .any(|e| e["ph"] == "C" && e["name"] == "teq.wakeup.targeted"));
    std::fs::remove_file(&chrome).ok();
}

#[cfg(feature = "metrics")]
#[test]
fn metrics_trace_out_is_deterministic() {
    let dir = tmpdir();
    let run = |path: &std::path::Path| {
        let out = bin()
            .args([
                "metrics",
                "--workload",
                "cholesky",
                "--n",
                "160",
                "--nb",
                "20",
                "--workers",
                "3",
                "--mode",
                "targeted",
                "--seed",
                "7",
                "--trace-out",
            ])
            .arg(path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let a = dir.join("a.txt");
    let b = dir.join("b.txt");
    run(&a);
    run(&b);
    let ta = std::fs::read_to_string(&a).unwrap();
    assert_eq!(ta, std::fs::read_to_string(&b).unwrap());
    assert!(!ta.is_empty());
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn sim_without_calibration_is_an_error() {
    let out = bin().args(["sim", "--alg", "qr"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--calibration"));
}

/// Every invalid-argument path — including values that only trip
/// `assert!`s deep inside the builder crates — must exit 2 with a
/// one-line stderr message, not abort with a panic dump (exit 101).
#[test]
fn invalid_arguments_exit_two_with_one_line() {
    for args in [
        // Parses fine, then trips Scenario::n's positivity assert.
        &["metrics", "--n", "0"][..],
        &["metrics", "--workers", "0"][..],
        // Trips the sweep expander's autotune-axis assert.
        &["sweep", "--autotune", "flux", "--tiles", "2"][..],
        // Plain flag-parse errors, for comparison.
        &["metrics", "--n", "banana"][..],
        &["faults", "--alg", "gemm"][..],
    ] {
        let out = bin().args(args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: expected exit 2, got {:?}",
            out.status.code()
        );
        let err = String::from_utf8(out.stderr).unwrap();
        let lines: Vec<&str> = err.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(
            lines.len(),
            1,
            "{args:?}: want one stderr line, got {err:?}"
        );
    }
}

/// `supersim serve` boots, answers /healthz, and stops on /shutdown.
#[test]
fn serve_command_boots_and_shuts_down() {
    use std::io::BufRead;
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--serve-workers", "2"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The first stderr line announces the bound address.
    let mut line = String::new();
    std::io::BufReader::new(child.stderr.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr: std::net::SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("serve announces its address")
        .parse()
        .unwrap();
    let health = supersim::serve::client_request(
        addr,
        "GET",
        "/healthz",
        "",
        std::time::Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));
    let bye = supersim::serve::client_request(
        addr,
        "POST",
        "/shutdown",
        "",
        std::time::Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(bye.status, 200);
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exits cleanly after /shutdown");
}
