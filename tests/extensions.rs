//! Integration tests of the implemented future-work extensions
//! (paper §VII): overhead modeling, heterogeneous platforms, mixtures,
//! and cancellation under simulation.

use supersim::calibrate::estimate_overhead;
use supersim::core::{KernelModel, ModelRegistry, SimConfig, SimSession};
use supersim::dist::{Dist, Mixture};
use supersim::prelude::*;

/// The §VII claim behind `overhead_per_task`: modeling the per-task
/// scheduler cost (estimated from real-trace gaps) must not make the
/// prediction worse, and the unmodeled prediction must be optimistic
/// (the paper's own diagnosis of its small-size error).
#[test]
fn overhead_modeling_does_not_hurt_accuracy() {
    let (n, nb, workers) = (240, 30, 1); // small tiles: overhead-dominated
    let real = Scenario::new(Algorithm::Cholesky)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(77)
        .run_real();
    let cal = calibrate(&real.trace, FitOptions::default());
    let overhead = estimate_overhead(&real.trace, 0.005)
        .map(|e| e.median_gap)
        .unwrap_or(0.0);
    assert!(
        overhead > 0.0,
        "a real run must show nonzero scheduler gaps"
    );

    let run_with = |oh: f64| {
        Scenario::new(Algorithm::Cholesky)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(cal.registry.clone())
            .config(SimConfig {
                seed: 5,
                overhead_per_task: oh,
                ..SimConfig::default()
            })
            .run_sim()
            .predicted_seconds
    };
    let plain = run_with(0.0);
    let modeled = run_with(overhead);

    let err_plain = (plain - real.seconds).abs() / real.seconds;
    let err_modeled = (modeled - real.seconds).abs() / real.seconds;
    assert!(
        plain <= real.seconds * 1.02,
        "unmodeled prediction should be optimistic"
    );
    assert!(modeled > plain, "overhead must lengthen the prediction");
    assert!(
        err_modeled <= err_plain + 0.02,
        "overhead modeling regressed accuracy: {:.2}% -> {:.2}%",
        err_plain * 100.0,
        err_modeled * 100.0
    );
}

/// Heterogeneous platform prediction: adding a 10x worker to a 1x worker
/// must shorten the predicted makespan of an independent task bag by the
/// theoretical factor (11x total speed vs 2x).
#[test]
fn heterogeneous_platform_speedup() {
    let bag = 44u64; // tasks
    let run = |speeds: Vec<f64>| {
        let mut models = ModelRegistry::new();
        models.insert("k", KernelModel::constant(1.0));
        let workers = speeds.len().max(2);
        let session = SimSession::new(
            models,
            SimConfig {
                worker_speeds: speeds,
                ..SimConfig::default()
            },
        );
        let rt = Runtime::new(RuntimeConfig::simple(workers));
        session.attach_quiesce(rt.probe());
        for i in 0..bag {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::write(DataId(i))],
                move |c| s.run_kernel(c, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
        session.virtual_now()
    };
    let homo = run(vec![1.0, 1.0]);
    let hetero = run(vec![1.0, 10.0]);
    // Homogeneous: 44 unit tasks on 2 workers = 22s. Heterogeneous ideal:
    // 44 / 11 = 4s; greedy FIFO won't be perfectly ideal but must beat 8s.
    assert_eq!(homo, 22.0);
    assert!(hetero < 8.0, "heterogeneous makespan {hetero}");
}

/// A bimodal mixture model flows through the whole stack: registry,
/// serde persistence, and simulation.
#[test]
fn mixture_kernel_model_end_to_end() {
    let bimodal =
        Dist::Mixture(Mixture::bimodal(0.8, Dist::constant(0.001), Dist::constant(0.010)).unwrap());
    let mut models = ModelRegistry::new();
    models.insert("k", KernelModel::new(bimodal));
    // Persist and reload (the calibration-database path).
    let json = serde_json::to_string(&models).unwrap();
    let models: ModelRegistry = serde_json::from_str(&json).unwrap();

    let session = SimSession::new(
        models,
        SimConfig {
            seed: 3,
            ..SimConfig::default()
        },
    );
    let rt = Runtime::new(RuntimeConfig::simple(1));
    session.attach_quiesce(rt.probe());
    for i in 0..200u64 {
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "k",
            vec![Access::write(DataId(i))],
            move |c| s.run_kernel(c, "k"),
        ));
    }
    rt.seal();
    rt.wait_all().unwrap();
    let trace = session.finish_trace(1);
    let slow = trace
        .spans()
        .iter()
        .filter(|e| e.duration() > 0.005)
        .count();
    // Expected ~20% slow; allow broad slack for 200 samples.
    assert!((20..=90).contains(&slow), "slow-mode count {slow}");
    // Mean duration between the two modes.
    let mean = trace.spans().iter().map(|e| e.duration()).sum::<f64>() / 200.0;
    assert!(mean > 0.001 && mean < 0.010);
}

/// Cancellation under simulation: abort a simulated run mid-flight; the
/// virtual clock stops advancing and the session stays consistent.
#[test]
fn abort_during_simulation() {
    let mut models = ModelRegistry::new();
    models.insert("k", KernelModel::constant(0.5));
    let session = SimSession::new(models, SimConfig::default());
    let rt = Runtime::new(RuntimeConfig::simple(2));
    session.attach_quiesce(rt.probe());
    for i in 0..40u64 {
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "k",
            vec![Access::read_write(DataId(i % 2))],
            move |c| s.run_kernel(c, "k"),
        ));
    }
    rt.seal();
    let cancelled = rt.abort_pending();
    rt.wait_all().unwrap();
    let executed = rt.stats().completed;
    assert_eq!(executed + cancelled, 40);
    let trace = session.finish_trace(2);
    assert_eq!(trace.len() as u64, executed);
    assert!(trace.validate(1e-9).is_ok());
    // Two chains of 0.5s tasks: the clock reflects only executed tasks.
    assert!(session.virtual_now() <= 0.5 * executed as f64 + 1e-9);
}
