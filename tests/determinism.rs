//! Reproducibility: simulated virtual times depend only on the seed and
//! the configuration, not on host timing.

use supersim::prelude::*;

fn sim_once(seed: u64, workers: usize) -> Trace {
    let mut models = ModelRegistry::new();
    for l in Algorithm::Cholesky.labels() {
        models.insert(*l, KernelModel::new(Dist::log_normal(-6.0, 0.3).unwrap()));
    }
    Scenario::new(Algorithm::Cholesky)
        .workers(workers)
        .n(160)
        .tile_size(20)
        .models(models)
        .config(SimConfig {
            seed,
            ..SimConfig::default()
        })
        .run_sim()
        .trace
}

#[test]
fn same_seed_same_virtual_times() {
    let a = sim_once(42, 3);
    let b = sim_once(42, 3);
    let cmp = TraceComparison::compare(&a, &b);
    assert_eq!(cmp.matched_tasks, a.len());
    assert_eq!(cmp.makespan_rel_error, 0.0, "makespans differ");
    assert_eq!(cmp.mean_start_shift, 0.0, "start times differ");
}

#[test]
fn different_seed_different_durations() {
    let a = sim_once(1, 2);
    let b = sim_once(2, 2);
    assert_ne!(a.makespan(), b.makespan());
}

#[test]
fn seed_stability_across_worker_counts() {
    // Same seed, different worker counts: durations (per task id) must be
    // identical even though placement differs.
    let a = sim_once(7, 1);
    let b = sim_once(7, 4);
    use std::collections::HashMap;
    let da: HashMap<u64, f64> = a
        .spans()
        .iter()
        .map(|e| (e.task_id, e.duration()))
        .collect();
    for e in b.spans() {
        let expect = da[&e.task_id];
        assert!(
            (e.duration() - expect).abs() < 1e-12,
            "task {} duration changed with worker count",
            e.task_id
        );
    }
}

#[test]
fn warmup_penalty_is_deterministic() {
    // With `warmup_factor != 1` the warm/cold split used to follow worker
    // *arrival order* — a host-scheduling race. Warm slots are now granted
    // by submission rank, so repeated oversubscribed runs must still agree
    // bit-for-bit on every virtual time.
    let sim = |seed: u64| -> Trace {
        let mut models = ModelRegistry::new();
        for l in Algorithm::Cholesky.labels() {
            models.insert(
                *l,
                KernelModel::with_warmup(Dist::log_normal(-6.0, 0.3).unwrap(), 3.0),
            );
        }
        Scenario::new(Algorithm::Cholesky)
            .workers(16)
            .n(160)
            .tile_size(20)
            .models(models)
            .config(SimConfig {
                seed,
                ..SimConfig::default()
            })
            .run_sim()
            .trace
    };
    let a = sim(42);
    for _ in 0..3 {
        let b = sim(42);
        let cmp = TraceComparison::compare(&a, &b);
        assert_eq!(cmp.matched_tasks, a.len());
        assert_eq!(cmp.makespan_rel_error, 0.0, "makespans differ");
        assert_eq!(cmp.mean_start_shift, 0.0, "start times differ");
    }
}

#[test]
fn same_seed_same_virtual_times_many_workers() {
    // Oversubscribed: 48 virtual workers on however few host cores. The
    // targeted-wakeup TEQ must keep virtual times bit-for-bit reproducible
    // under heavy thread interleaving, not just at small worker counts.
    let a = sim_once(42, 48);
    for _ in 0..5 {
        let b = sim_once(42, 48);
        let cmp = TraceComparison::compare(&a, &b);
        assert_eq!(cmp.matched_tasks, a.len());
        assert_eq!(cmp.makespan_rel_error, 0.0, "makespans differ");
        assert_eq!(cmp.mean_start_shift, 0.0, "start times differ");
    }
}
