//! Scale stress: thousands of simulated tasks per scheduler profile, with
//! full schedule validation against the explicit DAG.

use supersim::dag::validate::{validate_schedule, ScheduledTask};
use supersim::dag::DagBuilder;
use supersim::prelude::*;
use supersim::workloads::SharedTiles;

fn big_sim(kind: SchedulerKind, workers: usize) -> (Trace, f64) {
    // NT = 20 -> 20 + 190 + 190 + 1140 = 1540 Cholesky tasks.
    let (n, nb) = (2000, 100);
    let mut models = ModelRegistry::new();
    for l in Algorithm::Cholesky.labels() {
        models.insert(*l, KernelModel::new(Dist::gamma(9.0, 0.0003).unwrap()));
    }
    let sim = Scenario::new(Algorithm::Cholesky)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(models)
        .seed(99)
        .run_sim();
    (sim.trace, sim.predicted_seconds)
}

#[test]
fn thousands_of_tasks_all_schedulers() {
    // Build the reference DAG once.
    let a = SharedTiles::layout_only(2000, 2000, 100, 0);
    let mut b = DagBuilder::new();
    for task in supersim::tile::cholesky::task_stream(a.nt()) {
        b.submit(
            task.label(),
            1.0,
            &supersim::workloads::cholesky::accesses(&a, task),
        );
    }
    let graph = b.finish();
    assert_eq!(graph.len(), 1540);

    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let (trace, predicted) = big_sim(kind, 8);
        assert_eq!(trace.len(), 1540, "{kind:?}");
        assert!(predicted > 0.0);
        let sched: Vec<ScheduledTask> = trace
            .spans()
            .iter()
            .map(|e| ScheduledTask {
                task: e.task_id as usize,
                worker: e.worker,
                start: e.start,
                end: e.end,
            })
            .collect();
        validate_schedule(&graph, &sched, 1e-9)
            .unwrap_or_else(|e| panic!("{kind:?}: invalid simulated schedule: {e}"));
        // 8 workers on a DAG with avg parallelism >> 8: utilization must
        // be decent and the makespan far below serial.
        let stats = TraceStats::of(&trace);
        assert!(
            stats.utilization > 0.5,
            "{kind:?}: utilization {}",
            stats.utilization
        );
    }
}

#[test]
fn forty_eight_virtual_workers_qr() {
    // The paper's platform width at its Fig. 6/7 problem: n=3960, nb=180,
    // 48 virtual workers, 3795 tasks — pure simulation.
    let mut models = ModelRegistry::new();
    for l in Algorithm::Qr.labels() {
        models.insert(*l, KernelModel::constant(0.005));
    }
    let sim = Scenario::new(Algorithm::Qr)
        .workers(48)
        .n(3960)
        .tile_size(180)
        .models(models)
        .seed(48)
        .run_sim();
    assert_eq!(sim.trace.len(), 3795);
    assert!(sim.trace.validate(1e-9).is_ok());
    // 22x22 tiles has plenty of parallelism mid-factorization; the 48-lane
    // platform must beat an 8-lane one substantially.
    let mut models8 = ModelRegistry::new();
    for l in Algorithm::Qr.labels() {
        models8.insert(*l, KernelModel::constant(0.005));
    }
    let sim8 = Scenario::new(Algorithm::Qr)
        .workers(8)
        .n(3960)
        .tile_size(180)
        .models(models8)
        .seed(48)
        .run_sim();
    assert!(
        sim.predicted_seconds < sim8.predicted_seconds * 0.45,
        "48 workers ({}) should be well under half of 8 workers ({})",
        sim.predicted_seconds,
        sim8.predicted_seconds
    );
}
