//! Property-based invariants of the simulator: for random synthetic DAG
//! workloads, the simulated trace must be a valid schedule of the DAG
//! (precedence + worker exclusivity) and the virtual makespan must be
//! bracketed by the critical path and the serial time.

use proptest::prelude::*;
use supersim::dag::validate::{validate_schedule, ScheduledTask};
use supersim::prelude::*;
use supersim::workloads::synthetic::{layered, models_for, submit, to_graph};

fn run_layered(layers: usize, width: usize, fan_in: usize, seed: u64, workers: usize) {
    let tasks = layered(layers, width, fan_in, 0.01, seed);
    let graph = to_graph(&tasks);
    let session = SimSession::new(
        models_for(&tasks),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let rt = Runtime::new(RuntimeConfig::simple(workers));
    session.attach_quiesce(rt.probe());
    submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
    rt.seal();
    rt.wait_all().unwrap();
    let trace = session.finish_trace(workers);

    // 1. Trace is a valid schedule of the DAG.
    let sched: Vec<ScheduledTask> = trace
        .spans()
        .iter()
        .map(|e| ScheduledTask {
            task: e.task_id as usize,
            worker: e.worker,
            start: e.start,
            end: e.end,
        })
        .collect();
    validate_schedule(&graph, &sched, 1e-9).expect("invalid simulated schedule");

    // 2. Makespan bracketed by critical path and serial sum.
    // (Constant per-label models: durations may differ slightly from DAG
    // weights, so use the trace's own durations for the bounds.)
    let total: f64 = trace.spans().iter().map(|e| e.duration()).sum();
    let cp = supersim::dag::critical_path::critical_path(&graph).length;
    let makespan = trace.makespan();
    // Critical path uses nominal weights; allow small slack for the
    // label-mean model quantization.
    prop_assert_with(makespan <= total + 1e-9, "makespan exceeds serial time");
    prop_assert_with(
        makespan >= cp * 0.5,
        "makespan below half the critical path",
    );
}

fn prop_assert_with(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_trace_is_valid_schedule(
        layers in 2usize..5,
        width in 1usize..6,
        fan_in in 1usize..4,
        seed in 0u64..1000,
        workers in 1usize..5,
    ) {
        run_layered(layers, width, fan_in, seed, workers);
    }
}

#[test]
fn chain_and_fork_join_exact() {
    use supersim::workloads::synthetic::{chain, fork_join};
    // Chain: makespan = n * d exactly.
    let tasks = chain(8, 0.25);
    let session = SimSession::new(models_for(&tasks), SimConfig::default());
    let rt = Runtime::new(RuntimeConfig::simple(3));
    session.attach_quiesce(rt.probe());
    submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
    rt.seal();
    rt.wait_all().unwrap();
    assert_eq!(session.virtual_now(), 2.0);

    // Fork-join with enough workers: 3 levels exactly.
    let tasks = fork_join(5, 0.5);
    let session = SimSession::new(models_for(&tasks), SimConfig::default());
    let rt = Runtime::new(RuntimeConfig::simple(5));
    session.attach_quiesce(rt.probe());
    submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
    rt.seal();
    rt.wait_all().unwrap();
    assert_eq!(session.virtual_now(), 1.5);
}
