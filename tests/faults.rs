//! Fault-injection acceptance tests (DESIGN.md §7).
//!
//! The determinism contract: identical `(seed, FaultPlan)` yields
//! bit-for-bit identical *canonical* traces (task id, kernel, virtual
//! start/end — worker placement races run-to-run and is excluded), and an
//! empty plan is bit-for-bit identical to a plan-free run.
//!
//! The bit-for-bit contract is scoped to the *Quark* profile (the
//! default): its central FIFO makes the virtual-time schedule itself
//! deterministic, so only lane placement races. The StarPu and OmpSs
//! profiles deliberately model racy runtimes — stealing victims and
//! locality-queue refills follow host-thread interleaving, exactly as in
//! the systems they imitate — so their canonical *schedules* race
//! run-to-run and only rank-keyed quantities (retry counts, restart
//! counts) are stable. Determinism assertions also use only
//! lane-independent events (node-scoped stragglers, rank-keyed
//! transients, time-pure kills): a *worker-scoped* straggler's
//! perturbation keys on the racy lane assignment and is deterministic
//! only given the placement.

use proptest::prelude::*;
use std::sync::Arc;
use supersim::prelude::*;

const N: usize = 120;
const NB: usize = 20;

fn models(alg: Algorithm) -> ModelRegistry {
    let mut m = ModelRegistry::new();
    for l in alg.labels() {
        m.insert(*l, KernelModel::new(Dist::log_normal(-6.0, 0.3).unwrap()));
    }
    m
}

fn single_node(alg: Algorithm, kind: SchedulerKind, seed: u64) -> Scenario {
    Scenario::new(alg)
        .scheduler(kind)
        .workers(4)
        .n(N)
        .tile_size(NB)
        .models(models(alg))
        .seed(seed)
}

fn cluster(interconnect: Arc<dyn Interconnect>, seed: u64) -> Scenario {
    Scenario::new(Algorithm::Cholesky)
        .n(N)
        .tile_size(NB)
        .models(models(Algorithm::Cholesky))
        .seed(seed)
        .cluster(ClusterSpec::new(4, 2))
        .interconnect(interconnect)
        .placement(Arc::new(BlockCyclic::new(2, 2)))
}

/// A plan exercising every lane-independent event kind at once: uniform
/// slowdown, rank-keyed transients, and a time-pure permanent failure.
fn mixed_plan() -> FaultPlan {
    FaultPlan::new()
        .straggler_node(0, 0.0, 0.02, 3.0)
        .transient_for("dgemm", 3, 1, 0.5)
        .kill_worker(2, 0.03)
}

#[test]
fn same_seed_same_plan_same_canonical_trace() {
    let a = single_node(Algorithm::Cholesky, SchedulerKind::Quark, 42)
        .faults(mixed_plan())
        .run_faults();
    let b = single_node(Algorithm::Cholesky, SchedulerKind::Quark, 42)
        .faults(mixed_plan())
        .run_faults();
    assert_eq!(
        a.trace.canonical(),
        b.trace.canonical(),
        "faulted canonical traces differ"
    );
    assert_eq!(
        a.clean_trace.canonical(),
        b.clean_trace.canonical(),
        "clean canonical traces differ"
    );
    assert_eq!(a.report.clean_makespan, b.report.clean_makespan);
    assert_eq!(a.report.faulted_makespan, b.report.faulted_makespan);
    assert_eq!(a.report.retries, b.report.retries);
    assert_eq!(
        a.report.aborted_virtual_seconds,
        b.report.aborted_virtual_seconds
    );
    assert_eq!(a.report.lost_virtual_seconds, b.report.lost_virtual_seconds);
    assert_eq!(a.report.restarted_tasks, b.report.restarted_tasks);
    assert_eq!(a.report.per_fault, b.report.per_fault);
}

/// The racy profiles (stealing, locality queues) cannot promise stable
/// schedules, but rank-keyed fault decisions are schedule-independent:
/// which task ranks suffer a transient, and therefore how many retries
/// and re-executions occur, must not depend on the host interleaving.
#[test]
fn rank_keyed_counts_stable_on_racy_schedulers() {
    for kind in [SchedulerKind::StarPu, SchedulerKind::OmpSs] {
        let plan = || FaultPlan::new().transient(3, 2, 0.5);
        let a = single_node(Algorithm::Cholesky, kind, 42)
            .faults(plan())
            .run_faults();
        let b = single_node(Algorithm::Cholesky, kind, 42)
            .faults(plan())
            .run_faults();
        assert_eq!(a.report.retries, b.report.retries, "{kind:?}: retries");
        assert_eq!(
            a.report.restarted_tasks, b.report.restarted_tasks,
            "{kind:?}: restarted_tasks"
        );
        assert!(a.report.retries > 0, "{kind:?}: plan must bite");
    }
}

#[test]
fn cluster_same_plan_same_canonical_trace_both_interconnects() {
    let makes: [fn() -> Arc<dyn Interconnect>; 2] = [
        || Arc::new(Hockney::new(1e-4, 1e9)),
        || Arc::new(SharedLink::new(1e-4, 1e9)),
    ];
    for make in makes {
        let plan = || {
            FaultPlan::new()
                .degrade_link(0, 0.0, 0.02, 4.0)
                .transient(5, 1, 0.5)
                .kill_node(1, 0.03)
        };
        let a = cluster(make(), 42).faults(plan()).run_faults();
        let b = cluster(make(), 42).faults(plan()).run_faults();
        assert_eq!(a.trace.canonical(), b.trace.canonical());
        assert_eq!(a.clean_trace.canonical(), b.clean_trace.canonical());
        assert_eq!(a.report.faulted_makespan, b.report.faulted_makespan);
        assert_eq!(a.report.per_fault, b.report.per_fault);
    }
}

#[test]
fn empty_plan_is_clean_run_all_schedulers() {
    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let out = single_node(Algorithm::Cholesky, kind, 7)
            .faults(FaultPlan::new())
            .run_faults();
        // Cross-call bit-for-bit equality only holds on the deterministic
        // Quark schedule; the racy profiles can only promise the
        // within-call invariants below.
        if kind == SchedulerKind::Quark {
            let plain = single_node(Algorithm::Cholesky, kind, 7).run_sim();
            assert_eq!(
                plain.trace.canonical(),
                out.trace.canonical(),
                "empty plan must not perturb the run"
            );
        }
        assert_eq!(out.trace.canonical(), out.clean_trace.canonical());
        assert_eq!(out.report.slowdown, 1.0);
        assert_eq!(out.report.retries, 0);
        assert!(out.report.per_fault.is_empty());
    }
}

#[test]
fn empty_plan_is_clean_run_cluster_both_interconnects() {
    let makes: [fn() -> Arc<dyn Interconnect>; 2] = [
        || Arc::new(Hockney::new(1e-4, 1e9)),
        || Arc::new(SharedLink::new(1e-4, 1e9)),
    ];
    for make in makes {
        let plain = cluster(make(), 7).run_cluster();
        let out = cluster(make(), 7).faults(FaultPlan::new()).run_faults();
        assert_eq!(plain.trace.canonical(), out.trace.canonical());
        assert_eq!(out.trace.canonical(), out.clean_trace.canonical());
        assert_eq!(out.report.slowdown, 1.0);
    }
}

#[test]
fn retries_and_aborted_nonzero_iff_transients() {
    // Transients present: both counters must move.
    let with = single_node(Algorithm::Cholesky, SchedulerKind::Quark, 11)
        .faults(FaultPlan::new().transient(4, 2, 0.5))
        .run_faults();
    assert!(with.report.retries > 0, "transients must record retries");
    assert!(
        with.report.aborted_virtual_seconds > 0.0,
        "failed attempts must waste virtual time"
    );

    // Slowdown-only plan: both must stay zero.
    let without = single_node(Algorithm::Cholesky, SchedulerKind::Quark, 11)
        .faults(FaultPlan::new().straggler_node(0, 0.0, f64::MAX, 2.0))
        .run_faults();
    assert_eq!(without.report.retries, 0);
    assert_eq!(without.report.aborted_virtual_seconds, 0.0);
    assert_eq!(without.report.lost_virtual_seconds, 0.0);
}

#[test]
fn uniform_straggler_scales_constant_model_makespan_exactly() {
    // Constant kernel durations and a node-wide slowdown over the whole
    // timeline: every duration is multiplied by the factor, so the whole
    // schedule dilates linearly and the makespan scales by exactly the
    // factor (up to float rounding).
    let mut m = ModelRegistry::new();
    for l in Algorithm::Cholesky.labels() {
        m.insert(*l, KernelModel::constant(0.01));
    }
    let mk = || {
        Scenario::new(Algorithm::Cholesky)
            .workers(4)
            .n(N)
            .tile_size(NB)
            .models(m.clone())
            .seed(21)
    };
    for factor in [1.5, 2.0, 4.0] {
        let out = mk()
            .faults(FaultPlan::new().straggler_node(0, 0.0, f64::MAX, factor))
            .run_faults();
        let expected = out.report.clean_makespan * factor;
        let err = (out.report.faulted_makespan - expected).abs() / expected;
        assert!(
            err < 1e-9,
            "factor {factor}: faulted {} vs expected {expected}",
            out.report.faulted_makespan
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Injecting only work-increasing events (slowdown factor >= 1,
    /// transient retries) can never beat the clean run.
    #[test]
    fn faulted_makespan_never_beats_clean(
        seed in 0u64..1_000,
        factor in 1.0f64..4.0,
        until in 0.005f64..0.1,
        period in 2u64..8,
    ) {
        let out = single_node(Algorithm::Cholesky, SchedulerKind::Quark, seed)
            .faults(
                FaultPlan::new()
                    .straggler_node(0, 0.0, until, factor)
                    .transient(period, 1, 0.5),
            )
            .run_faults();
        prop_assert!(
            out.report.faulted_makespan >= out.report.clean_makespan - 1e-12,
            "faulted {} beat clean {}",
            out.report.faulted_makespan,
            out.report.clean_makespan
        );
        prop_assert!(out.report.slowdown >= 1.0 - 1e-12);
    }

    /// A permanent failure with recovery never finishes before the clean
    /// run, and the replay re-executes work whenever the kill lands
    /// mid-run.
    #[test]
    fn kill_with_recovery_never_beats_clean(
        seed in 0u64..1_000,
        at in 0.005f64..0.05,
    ) {
        let out = single_node(Algorithm::Cholesky, SchedulerKind::Quark, seed)
            .faults(FaultPlan::new().kill_worker(1, at))
            .run_faults();
        prop_assert!(
            out.report.faulted_makespan >= out.report.clean_makespan - 1e-12
        );
        if at < out.report.clean_makespan {
            prop_assert!(
                out.report.restarted_tasks > 0,
                "mid-run kill at {at} (clean makespan {}) must restart work",
                out.report.clean_makespan
            );
        }
    }
}
